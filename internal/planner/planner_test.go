package planner

import (
	"testing"
	"time"

	"skybench/internal/dataset"
)

func profileOf(t *testing.T, dist dataset.Distribution, n, d int) Profile {
	t.Helper()
	m := dataset.Generate(dist, n, d, 42)
	return ProfileFlat(m.Flat(), m.N(), m.D())
}

// TestProfileClassifiesDistributions checks that the Spearman-based
// classifier recovers the generator's three correlation classes, and
// that the skyline estimate orders them correctly (correlated tiny,
// anticorrelated huge).
func TestProfileClassifiesDistributions(t *testing.T) {
	n, d := 20000, 8
	corr := profileOf(t, dataset.Correlated, n, d)
	indep := profileOf(t, dataset.Independent, n, d)
	anti := profileOf(t, dataset.Anticorrelated, n, d)

	if corr.Class != ClassCorrelated {
		t.Errorf("correlated profile classified %q (rho=%.3f)", corr.Class, corr.MeanRho)
	}
	if indep.Class != ClassIndependent {
		t.Errorf("independent profile classified %q (rho=%.3f)", indep.Class, indep.MeanRho)
	}
	if anti.Class != ClassAnticorrelated {
		t.Errorf("anticorrelated profile classified %q (rho=%.3f)", anti.Class, anti.MeanRho)
	}
	if !(corr.SkylineEst < indep.SkylineEst && indep.SkylineEst < anti.SkylineEst) {
		t.Errorf("skyline estimates not ordered: corr=%d indep=%d anti=%d",
			corr.SkylineEst, indep.SkylineEst, anti.SkylineEst)
	}
	for _, p := range []Profile{corr, indep, anti} {
		if p.SkylineEst < 1 || p.SkylineEst > n {
			t.Errorf("skyline estimate %d out of [1, %d]", p.SkylineEst, n)
		}
		if p.SampleN != profileSampleCap {
			t.Errorf("sample size %d, want %d", p.SampleN, profileSampleCap)
		}
	}
}

// TestProfileDegenerateInputs: empty and tiny inputs must not panic and
// must stay in sane ranges.
func TestProfileDegenerateInputs(t *testing.T) {
	if p := ProfileFlat(nil, 0, 0); p.Class != ClassIndependent || p.SkylineEst != 0 {
		t.Errorf("empty profile = %+v", p)
	}
	p := ProfileFlat([]float64{1, 2, 3, 4}, 2, 2)
	if p.SkylineEst < 0 || p.SkylineEst > 2 {
		t.Errorf("tiny profile estimate %d", p.SkylineEst)
	}
}

// TestDecideColdAnticorrelated: on a cold, large anticorrelated profile
// the model must pick unsharded Hybrid (the measured best on this class
// at low core counts) and must never explore Q-Flow — its predicted
// cost sits far beyond the explore bound.
func TestDecideColdAnticorrelated(t *testing.T) {
	prof := Profile{
		N: 100000, D: 8, SampleN: 512,
		MeanRho: -0.14, Class: ClassAnticorrelated,
		SkylineEst: 60000, SkylineFrac: 0.6,
	}
	p := New(prof, Config{Seed: 7})
	// Replay what the Store feeds back on this workload (the BENCH shard
	// numbers): Hybrid answers in ~500ms doing ~45M dominance tests, and
	// the cost rows calibrate the planner's ns-per-test rate from that.
	// Under the calibrated rate Q-Flow's predicted cost (n·m/4 ≈ 1.5G
	// tests ≈ 17s) stays far beyond the 8×500ms explore bound — and on
	// the very first, uncalibrated decision the bound is the model price
	// of Hybrid itself (~tens of ms), which prices Q-Flow out too.
	var rows []CostRow
	for i := 0; i < 200; i++ {
		dec := p.Decide(rows, 4)
		if dec.Algorithm == AlgoQFlow {
			t.Fatalf("decision %d explored Q-Flow on a cold 100k anticorrelated set (reason: %s)", i, dec.Reason)
		}
		if !dec.NoPrefilter {
			t.Errorf("decision %d kept the prefilter on anticorrelated data", i)
		}
		p.Observe(dec.Algorithm, dec.Shards, 500*time.Millisecond)
		rows = []CostRow{{Algorithm: AlgoHybrid, Count: uint64(i + 1), P50: 500 * time.Millisecond, MeanDTs: 45e6}}
	}
}

// TestDecideConvergesToMeasuredBest: whatever the model believes, once
// every arm has history the planner must exploit the measured fastest
// arm (here: sharded Q-Flow, the anticorrelated BENCH result).
func TestDecideConvergesToMeasuredBest(t *testing.T) {
	prof := Profile{
		N: 100000, D: 8, SampleN: 512,
		MeanRho: -0.14, Class: ClassAnticorrelated,
		SkylineEst: 60000, SkylineFrac: 0.6,
	}
	p := New(prof, Config{Seed: 3, MinSamples: 2})
	// Hand every arm enough history that exploitation is pure p50
	// comparison: qflow/4 measured fastest.
	lat := map[Arm]time.Duration{
		{AlgoHybrid, 1}: 700 * time.Millisecond,
		{AlgoHybrid, 4}: 900 * time.Millisecond,
		{AlgoQFlow, 1}:  5 * time.Second,
		{AlgoQFlow, 4}:  300 * time.Millisecond,
	}
	for arm, l := range lat {
		for i := 0; i < 4; i++ {
			p.Observe(arm.Algorithm, arm.Shards, l)
		}
	}
	exploit := 0
	for i := 0; i < 50; i++ {
		dec := p.Decide(nil, 4)
		if !dec.Explore {
			exploit++
			if dec.Algorithm != AlgoQFlow || dec.Shards != 4 {
				t.Fatalf("exploited %s/%d, want qflow/4 (reason: %s)", dec.Algorithm, dec.Shards, dec.Reason)
			}
		}
	}
	if exploit == 0 {
		t.Fatal("no exploit decisions in 50 rounds")
	}
}

// TestDecideHonorsMaxShards: with maxShards 1 only unsharded arms are
// candidates.
func TestDecideHonorsMaxShards(t *testing.T) {
	p := New(Profile{N: 10000, D: 4, SkylineEst: 100, SkylineFrac: 0.01, Class: ClassCorrelated}, Config{Seed: 1})
	for i := 0; i < 100; i++ {
		dec := p.Decide(nil, 1)
		if dec.Shards != 1 {
			t.Fatalf("decision chose %d shards with maxShards 1", dec.Shards)
		}
		if len(dec.Candidates) != 2 {
			t.Fatalf("%d candidates with maxShards 1, want 2", len(dec.Candidates))
		}
	}
}

// TestCalibrateFromHistory: the ns-per-dominance-test rate must come
// from the cheapest measured row, clamped to the sane band.
func TestCalibrateFromHistory(t *testing.T) {
	p := New(Profile{N: 1000, SkylineEst: 10}, Config{})
	if got := p.calibrate(nil); got != 2 {
		t.Errorf("cold calibration = %v, want the default 2", got)
	}
	rows := []CostRow{
		{Algorithm: AlgoHybrid, Count: 10, P50: 10 * time.Millisecond, MeanDTs: 1e6}, // 10 ns/DT
		{Algorithm: AlgoQFlow, Count: 10, P50: 100 * time.Millisecond, MeanDTs: 2e7}, // 5 ns/DT
	}
	if got := p.calibrate(rows); got != 5 {
		t.Errorf("calibration = %v, want 5 (cheapest row)", got)
	}
	hot := []CostRow{{Algorithm: AlgoHybrid, Count: 5, P50: time.Nanosecond, MeanDTs: 1e9}}
	if got := p.calibrate(hot); got != 0.25 {
		t.Errorf("calibration = %v, want the 0.25 floor", got)
	}
}

// TestPickAlpha: paper defaults on big inputs, halved down (never below
// 256) while fewer than four blocks fit.
func TestPickAlpha(t *testing.T) {
	if got := pickAlpha(AlgoHybrid, 100000); got != 1024 {
		t.Errorf("hybrid alpha at 100k = %d, want 1024", got)
	}
	if got := pickAlpha(AlgoQFlow, 100000); got != 8192 {
		t.Errorf("qflow alpha at 100k = %d, want 8192", got)
	}
	if got := pickAlpha(AlgoHybrid, 1000); got != 256 {
		t.Errorf("hybrid alpha at 1k = %d, want 256", got)
	}
	if got := pickAlpha(AlgoQFlow, 50); got != 256 {
		t.Errorf("qflow alpha at 50 = %d, want the 256 floor", got)
	}
}

// TestDecisionCounts: tallies accumulate per (arm, explore) and come
// back sorted.
func TestDecisionCounts(t *testing.T) {
	p := New(Profile{N: 1000, D: 2, SkylineEst: 10, SkylineFrac: 0.01}, Config{Seed: 5})
	for i := 0; i < 30; i++ {
		dec := p.Decide(nil, 2)
		p.Observe(dec.Algorithm, dec.Shards, time.Millisecond)
	}
	var total uint64
	counts := p.DecisionCounts()
	for i, dc := range counts {
		total += dc.Count
		if i > 0 {
			prev := counts[i-1]
			if dc.Algorithm < prev.Algorithm {
				t.Errorf("decision counts unsorted: %v before %v", prev, dc)
			}
		}
	}
	if total != 30 {
		t.Errorf("decision counts sum to %d, want 30", total)
	}
}
