// Package planner is the adaptive query planner behind
// skybench.Algorithm Auto: given a one-time data profile of a
// collection (correlation class, estimated skyline cardinality) and the
// collection's rolling per-algorithm cost history, it picks the
// algorithm, the shard fan-out, and the α/β tuning for each query —
// with a bounded ε-greedy explore/exploit rule so cold collections
// converge to the measured best arm without hand-set knobs.
//
// The package deliberately knows nothing about skybench's public types
// (skybench imports it, not vice versa): algorithms are their CLI
// names, cost history arrives as flat CostRow values, and the caller
// translates the Decision back into a Query. DESIGN.md §14 documents
// the profile features, the scoring rule, and the soundness argument
// for overriding the configured shard count.
package planner

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"skybench/internal/point"
)

// Algorithm names the planner can choose between. Only the two hot-path
// algorithms are candidate arms: they alone serve k-skyband queries,
// support cancellation mid-flight, and run allocation-free on a warm
// engine — the baselines exist for the paper's comparisons, not for
// serving.
const (
	AlgoHybrid = "hybrid"
	AlgoQFlow  = "qflow"
)

// Profile classification labels (matching the generator's distribution
// names so traces read naturally).
const (
	ClassCorrelated     = "correlated"
	ClassIndependent    = "independent"
	ClassAnticorrelated = "anticorrelated"
)

// profileSampleCap bounds the rows a profile samples: large enough for
// stable rank correlations (the standard error of Spearman's ρ is
// ~1/√s ≈ 0.044) and a two-point skyline-growth fit, small enough that
// profiling at attach time costs well under a millisecond of dominance
// tests (s² ≈ 262k pairs).
const profileSampleCap = 512

// Profile is the attach-time data profile of one collection: the
// planner's per-dataset features, computed once from a strided sample
// and reused by every Decide call.
type Profile struct {
	// N and D are the collection's size and dimensionality at profiling
	// time.
	N, D int
	// SampleN is the number of rows actually sampled.
	SampleN int
	// MeanRho is the mean pairwise Spearman rank correlation over the
	// sample — negative for anticorrelated data, near zero for
	// independent, strongly positive for correlated.
	MeanRho float64
	// Class is the correlation class MeanRho maps to (the generator's
	// distribution names).
	Class string
	// SkylineEst estimates the full set's skyline cardinality by fitting
	// a power law m(s) = c·s^γ to two prefix probes of the sample and
	// extrapolating to N. SkylineFrac is SkylineEst/N.
	SkylineEst  int
	SkylineFrac float64
}

// ProfileFlat profiles a row-major n×d dataset. It samples at most
// profileSampleCap rows with a fixed stride (deterministic — profiling
// twice yields the same profile), computes the mean pairwise Spearman
// correlation, and estimates skyline cardinality from a two-point
// prefix probe.
func ProfileFlat(vals []float64, n, d int) Profile {
	p := Profile{N: n, D: d, Class: ClassIndependent}
	if n <= 0 || d <= 0 {
		return p
	}
	s := n
	if s > profileSampleCap {
		s = profileSampleCap
	}
	stride := n / s
	if stride < 1 {
		stride = 1
	}
	sample := make([]float64, 0, s*d)
	for i := 0; i < s; i++ {
		r := i * stride
		sample = append(sample, vals[r*d:(r+1)*d]...)
	}
	p.SampleN = s

	p.MeanRho = meanSpearman(sample, s, d)
	switch {
	case p.MeanRho <= -0.08:
		p.Class = ClassAnticorrelated
	case p.MeanRho >= 0.25:
		p.Class = ClassCorrelated
	}

	// Two-point prefix probe: skyline of the first half vs the full
	// sample gives the local growth exponent γ; extrapolating m(s)·
	// (n/s)^γ to the full set (clamped to [m(s), n]) estimates the
	// skyline cardinality. γ near 1 (anticorrelated: the skyline grows
	// linearly) extrapolates to a dense skyline; γ near 0 (correlated:
	// the skyline saturates) keeps the estimate small.
	half := s / 2
	m2 := skylineCount(sample, s, d)
	gamma := 1.0
	if half >= 8 {
		m1 := skylineCount(sample, half, d)
		if m1 > 0 && m2 > m1 {
			gamma = math.Log(float64(m2)/float64(m1)) / math.Log(float64(s)/float64(half))
		} else if m2 <= m1 {
			gamma = 0
		}
		if gamma < 0 {
			gamma = 0
		}
		if gamma > 1 {
			gamma = 1
		}
	}
	est := float64(m2) * math.Pow(float64(n)/float64(s), gamma)
	if est < float64(m2) {
		est = float64(m2)
	}
	if est > float64(n) {
		est = float64(n)
	}
	p.SkylineEst = int(est)
	p.SkylineFrac = est / float64(n)
	return p
}

// skylineCount is the O(n²) oracle skyline size of the first n rows —
// only ever run on the bounded profile sample.
func skylineCount(vals []float64, n, d int) int {
	count := 0
	for i := 0; i < n; i++ {
		dominated := false
		for j := 0; j < n; j++ {
			if j != i && point.DominatesFlat(vals, j*d, i*d, d) {
				dominated = true
				break
			}
		}
		if !dominated {
			count++
		}
	}
	return count
}

// meanSpearman is the mean pairwise Spearman rank correlation over all
// dimension pairs of the s×d sample.
func meanSpearman(sample []float64, s, d int) float64 {
	if s < 3 || d < 2 {
		return 0
	}
	rk := make([][]float64, d)
	col := make([]float64, s)
	for j := 0; j < d; j++ {
		for i := 0; i < s; i++ {
			col[i] = sample[i*d+j]
		}
		rk[j] = rankVector(col)
	}
	var sum float64
	pairs := 0
	for a := 0; a < d; a++ {
		for b := a + 1; b < d; b++ {
			sum += pearson(rk[a], rk[b])
			pairs++
		}
	}
	if pairs == 0 {
		return 0
	}
	return sum / float64(pairs)
}

// rankVector assigns average ranks (ties share the mean of their rank
// range), the standard Spearman construction.
func rankVector(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// pearson is the Pearson correlation of two equal-length vectors.
func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// CostRow is one algorithm's rolling cost history as the planner
// consumes it: windowed latency and windowed mean dominance tests (the
// same decay rate, so the ns-per-test calibration below stays honest).
type CostRow struct {
	Algorithm string
	Count     uint64
	P50       time.Duration
	MeanDTs   float64 // windowed mean dominance tests per run
}

// Arm is one candidate plan: an algorithm at a fan-out.
type Arm struct {
	Algorithm string
	Shards    int
}

// Candidate is one scored arm, recorded into the decision trace.
type Candidate struct {
	Algorithm string
	Shards    int
	Predicted time.Duration
	// Source is "history" (the arm's own measured p50) or "model" (the
	// profile-driven cost model, before enough samples exist).
	Source  string
	Samples int
}

// Decision is the planner's answer for one query.
type Decision struct {
	Algorithm   string
	Shards      int
	Alpha       int
	Beta        int
	NoPrefilter bool
	// Explore marks an ε-greedy exploration of an under-sampled arm
	// rather than the lowest-predicted-cost choice.
	Explore    bool
	Reason     string
	Candidates []Candidate
}

// Config tunes the planner. The zero value selects the defaults.
type Config struct {
	// Epsilon is the exploration probability while under-sampled arms
	// remain (default 0.2).
	Epsilon float64
	// MinSamples is how many measured runs an arm needs before its own
	// history replaces the model score (default 3).
	MinSamples int
	// ExploreFactor and ExploreCeiling bound exploration to cheap
	// queries: an under-sampled arm is only explored when its predicted
	// cost is within ExploreFactor× the best arm's, or under
	// ExploreCeiling outright (defaults 8 and 100ms). This is what keeps
	// a cold collection from burning seconds measuring Q-Flow on an
	// anticorrelated 100k-point set whose model already prices it 100×
	// out.
	ExploreFactor  float64
	ExploreCeiling time.Duration
	// NsPerDT seeds the dominance-test → wall-clock conversion before
	// any history exists to calibrate it from (default 2ns).
	NsPerDT float64
	// Seed drives the ε-greedy coin deterministically.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Epsilon <= 0 {
		c.Epsilon = 0.2
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 3
	}
	if c.ExploreFactor <= 0 {
		c.ExploreFactor = 8
	}
	if c.ExploreCeiling <= 0 {
		c.ExploreCeiling = 100 * time.Millisecond
	}
	if c.NsPerDT <= 0 {
		c.NsPerDT = 2
	}
	return c
}

// armWindow is the number of recent latencies each arm retains; small,
// so the planner adapts quickly when a workload shifts.
const armWindow = 32

type armStats struct {
	window [armWindow]int64
	wn, wi int
	count  uint64
}

// p50 is the arm's windowed median latency.
func (a *armStats) p50() time.Duration {
	if a.wn == 0 {
		return 0
	}
	s := make([]int64, a.wn)
	copy(s, a.window[:a.wn])
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return time.Duration(s[(a.wn*50+99)/100-1])
}

// DecisionCount is one aggregated decision tally for observability.
type DecisionCount struct {
	Algorithm string
	Shards    int
	Explore   bool
	Count     uint64
}

// Planner makes per-query plan decisions for one collection. Safe for
// concurrent use.
type Planner struct {
	mu        sync.Mutex
	cfg       Config
	prof      Profile
	rng       *rand.Rand
	arms      map[Arm]*armStats
	decisions map[DecisionCount]uint64 // key has Count zero
}

// New creates a planner over an initial profile.
func New(prof Profile, cfg Config) *Planner {
	cfg = cfg.withDefaults()
	return &Planner{
		cfg:       cfg,
		prof:      prof,
		rng:       rand.New(rand.NewSource(cfg.Seed + 1)),
		arms:      make(map[Arm]*armStats),
		decisions: make(map[DecisionCount]uint64),
	}
}

// Profile returns the planner's current data profile.
func (p *Planner) Profile() Profile {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.prof
}

// SetProfile replaces the data profile (a stream collection whose size
// drifted far from the profiled one re-profiles). Arm history is kept:
// it measures the engine, which did not change.
func (p *Planner) SetProfile(prof Profile) {
	p.mu.Lock()
	p.prof = prof
	p.mu.Unlock()
}

// Observe books one measured run of an arm.
func (p *Planner) Observe(algorithm string, shards int, elapsed time.Duration) {
	if shards < 1 {
		shards = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	arm := Arm{Algorithm: algorithm, Shards: shards}
	a := p.arms[arm]
	if a == nil {
		a = &armStats{}
		p.arms[arm] = a
	}
	a.count++
	a.window[a.wi] = int64(elapsed)
	a.wi = (a.wi + 1) % armWindow
	if a.wn < armWindow {
		a.wn++
	}
}

// DecisionCounts returns the per-(arm, explore) decision tallies,
// sorted for stable rendering.
func (p *Planner) DecisionCounts() []DecisionCount {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]DecisionCount, 0, len(p.decisions))
	for k, n := range p.decisions {
		k.Count = n
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Algorithm != b.Algorithm {
			return a.Algorithm < b.Algorithm
		}
		if a.Shards != b.Shards {
			return a.Shards < b.Shards
		}
		return !a.Explore && b.Explore
	})
	return out
}

// Decide picks the plan for one query: the arm (algorithm × fan-out)
// with the lowest predicted latency — each arm's own measured p50 once
// it has MinSamples runs, the profile-driven cost model before — with
// an ε-greedy, cost-bounded exploration of under-sampled arms.
// maxShards is the collection's configured (and clamped) partition
// count; the planner may choose 1 instead, never more.
func (p *Planner) Decide(rows []CostRow, maxShards int) Decision {
	if maxShards < 1 {
		maxShards = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()

	nsPerDT := p.calibrate(rows)
	arms := []Arm{{AlgoHybrid, 1}, {AlgoQFlow, 1}}
	if maxShards > 1 {
		arms = append(arms, Arm{AlgoHybrid, maxShards}, Arm{AlgoQFlow, maxShards})
	}

	cands := make([]Candidate, len(arms))
	bestIdx := 0
	for i, arm := range arms {
		c := Candidate{Algorithm: arm.Algorithm, Shards: arm.Shards, Source: "model"}
		if a := p.arms[arm]; a != nil {
			c.Samples = a.wn
			if a.wn >= p.cfg.MinSamples {
				c.Source = "history"
				c.Predicted = a.p50()
			}
		}
		if c.Source == "model" {
			c.Predicted = time.Duration(p.modelDTs(arm) * nsPerDT)
		}
		cands[i] = c
		if c.Predicted < cands[bestIdx].Predicted {
			bestIdx = i
		}
	}

	chosen := bestIdx
	explore := false
	reason := fmt.Sprintf("exploit: lowest predicted cost (%s)", cands[bestIdx].Source)
	if p.rng.Float64() < p.cfg.Epsilon {
		bound := time.Duration(p.cfg.ExploreFactor * float64(cands[bestIdx].Predicted))
		if bound < p.cfg.ExploreCeiling {
			bound = p.cfg.ExploreCeiling
		}
		cold := -1
		for i, c := range cands {
			if i == bestIdx || c.Samples >= p.cfg.MinSamples || c.Predicted > bound {
				continue
			}
			if cold < 0 || c.Predicted < cands[cold].Predicted {
				cold = i
			}
		}
		if cold >= 0 {
			chosen = cold
			explore = true
			reason = fmt.Sprintf("explore: %d/%d samples, predicted %v within budget %v",
				cands[cold].Samples, p.cfg.MinSamples, cands[cold].Predicted.Round(time.Microsecond), bound.Round(time.Microsecond))
		}
	}

	dec := Decision{
		Algorithm:  cands[chosen].Algorithm,
		Shards:     cands[chosen].Shards,
		Explore:    explore,
		Reason:     reason,
		Candidates: cands,
	}
	dec.Alpha = pickAlpha(dec.Algorithm, p.prof.N)
	if dec.Algorithm == AlgoHybrid {
		// On skyline-dense (anticorrelated) data the β-queue prefilter
		// prunes almost nothing yet pays ~β dominance tests per point;
		// turn it off there, keep the paper's β=8 otherwise.
		if p.prof.Class == ClassAnticorrelated {
			dec.NoPrefilter = true
		} else {
			dec.Beta = 8
		}
	}
	key := DecisionCount{Algorithm: dec.Algorithm, Shards: dec.Shards, Explore: explore}
	p.decisions[key]++
	return dec
}

// calibrate converts dominance tests to nanoseconds using the measured
// history: the smallest observed p50-latency / windowed-mean-DTs ratio
// across algorithms (the most efficient observed rate — pessimistic
// predictions block exploration, so lean cheap). Falls back to the
// configured default with no usable history.
func (p *Planner) calibrate(rows []CostRow) float64 {
	best := 0.0
	for _, r := range rows {
		if r.Count == 0 || r.MeanDTs <= 0 || r.P50 <= 0 {
			continue
		}
		ratio := float64(r.P50) / r.MeanDTs
		if best == 0 || ratio < best {
			best = ratio
		}
	}
	if best == 0 {
		return p.cfg.NsPerDT
	}
	// Clamp to a sane band: tiny windows on tiny inputs can produce
	// wild per-test rates dominated by fixed per-query overhead.
	if best < 0.25 {
		best = 0.25
	}
	if best > 50 {
		best = 50
	}
	return best
}

// modelDTs predicts an arm's dominance-test count from the profile:
// Hybrid's M(S) index compares each point against an O(√m)-ish slice of
// the m skyline points; Q-Flow's block flow is closer to n·m. The
// absolute coefficients are rough — they only need to order the arms
// and price exploration, and measured history replaces them after
// MinSamples runs. The sharded factors encode the BENCH shard rows:
// fan-out + merge never pays off for Hybrid at this engine's shared
// pool, and pays off for Q-Flow only when the skyline is dense (the
// per-shard quadratic term dominates and splits P ways).
func (p *Planner) modelDTs(arm Arm) float64 {
	n := float64(p.prof.N)
	m := float64(p.prof.SkylineEst)
	if n < 1 {
		n = 1
	}
	if m < 1 {
		m = 1
	}
	var base float64
	switch arm.Algorithm {
	case AlgoQFlow:
		base = n * m / 4
	default: // AlgoHybrid
		base = 0.5 * n * math.Sqrt(m)
	}
	if arm.Shards > 1 {
		switch arm.Algorithm {
		case AlgoQFlow:
			if p.prof.SkylineFrac >= 0.3 {
				f := 1.6 / float64(arm.Shards)
				if f < 0.35 {
					f = 0.35
				}
				base *= f
			} else {
				base *= 1.5
			}
		default:
			base *= 1.4
		}
	}
	return base
}

// pickAlpha picks the α-block size: the paper's defaults (2^10 Hybrid,
// 2^13 Q-Flow), halved while the input holds fewer than four blocks so
// the block pipeline actually pipelines on small collections. α never
// changes the result, only the schedule.
func pickAlpha(algorithm string, n int) int {
	alpha := 1 << 10
	if algorithm == AlgoQFlow {
		alpha = 1 << 13
	}
	for alpha > 256 && n < 4*alpha {
		alpha >>= 1
	}
	return alpha
}
