package pivot

import (
	"testing"

	"skybench/internal/dataset"
	"skybench/internal/point"
	"skybench/internal/verify"
)

func l1s(m point.Matrix) []float64 {
	out := make([]float64, m.N())
	m.L1All(out)
	return out
}

func TestParseAndString(t *testing.T) {
	for _, s := range AllStrategies {
		got, err := Parse(s.String())
		if err != nil || got != s {
			t.Errorf("Parse(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("expected error")
	}
	if Strategy(42).String() != "strategy(42)" {
		t.Error("out-of-range String")
	}
}

func TestSelectShapes(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 400, 5, 1)
	norms := l1s(m)
	for _, s := range AllStrategies {
		v := Select(s, m, norms, 7)
		if len(v) != 5 {
			t.Fatalf("%v: pivot has %d dims", s, len(v))
		}
		for _, x := range v {
			if x < 0 || x > 1 {
				t.Fatalf("%v: pivot coord %v out of data range", s, x)
			}
		}
	}
}

func TestSelectEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Select(Median, point.Matrix{}, nil, 0)
}

// Manhattan, Volume, Random, and Balanced pivots must be actual skyline
// points of the data (the paper relies on this for Manhattan/Volume and
// obtains it probabilistically for Random/Balanced via refinement).
func TestPointPivotsAreSkylinePoints(t *testing.T) {
	m := dataset.Generate(dataset.Anticorrelated, 300, 4, 13)
	norms := l1s(m)
	sky := verify.BruteForce(m)
	inSky := func(v []float64) bool {
		for _, i := range sky {
			if point.Equals(m.Row(i), v) {
				return true
			}
		}
		return false
	}
	for _, s := range []Strategy{Manhattan, Volume, Random, Balanced} {
		v := Select(s, m, norms, 3)
		if !inSky(v) {
			t.Errorf("%v pivot %v is not a skyline point", s, v)
		}
	}
}

// The median pivot should split independent data into reasonably balanced
// halves on every dimension.
func TestMedianBalance(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 2000, 4, 21)
	v := Select(Median, m, l1s(m), 0)
	for j := 0; j < 4; j++ {
		below := 0
		for i := 0; i < m.N(); i++ {
			if m.Row(i)[j] < v[j] {
				below++
			}
		}
		frac := float64(below) / float64(m.N())
		if frac < 0.4 || frac > 0.6 {
			t.Errorf("dim %d: %.2f of points below median pivot", j, frac)
		}
	}
}

func TestManhattanIsMinL1(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 500, 3, 2)
	norms := l1s(m)
	v := Select(Manhattan, m, norms, 0)
	got := point.L1(v)
	for _, n := range norms {
		if n < got {
			t.Fatalf("Manhattan pivot L1=%v but smaller norm %v exists", got, n)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 500, 3, 2)
	norms := l1s(m)
	a := Select(Random, m, norms, 5)
	b := Select(Random, m, norms, 5)
	if !point.Equals(a, b) {
		t.Error("Random pivot not deterministic for fixed seed")
	}
}

func TestBalancedHandlesConstantDimension(t *testing.T) {
	// A constant dimension must not divide by zero during normalization.
	m := point.FromRows([][]float64{
		{0.5, 1, 0.2}, {0.5, 2, 0.9}, {0.5, 3, 0.1}, {0.5, 0.5, 0.5},
	})
	v := Select(Balanced, m, l1s(m), 0)
	if len(v) != 3 {
		t.Fatal("bad pivot")
	}
}

func TestSelectOnDuplicateHeavyData(t *testing.T) {
	m := dataset.Generate(dataset.Independent, 600, 4, 3)
	dataset.Quantize(m, 4) // heavy duplication
	norms := l1s(m)
	for _, s := range AllStrategies {
		v := Select(s, m, norms, 1)
		if len(v) != 4 {
			t.Fatalf("%v: bad pivot on duplicate data", s)
		}
	}
}
