// Package pivot implements the five pivot-selection strategies evaluated
// in Section VII-C2 of the paper. The pivot v partitions the data into 2^d
// regions via masks; partition quality (balance) determines how much
// region-wise incomparability the Hybrid algorithm can exploit.
//
// Correctness never depends on the pivot choice: the mask properties of
// Section VI-A2 hold for an arbitrary constant point v. Strategy only
// affects pruning power.
package pivot

import (
	"fmt"
	"math/rand"
	"slices"

	"skybench/internal/point"
)

// Strategy selects how the pivot point is computed.
type Strategy int

const (
	// Median: virtual point whose coordinates are the per-dimension
	// medians of the (pre-filtered) data. The paper's default — produces
	// partitions of roughly equal size and performs consistently best.
	Median Strategy = iota
	// Balanced: the skyline point with minimum range of normalized
	// coordinates (BSkyTree's pivot criterion, [15]).
	Balanced
	// Manhattan: the point with minimum L1 norm, necessarily a skyline
	// point ([9]).
	Manhattan
	// Volume: the point maximizing the dominated hyper-volume
	// Πᵢ (1 − p[i]) (SaLSa's criterion, [2]); necessarily a skyline point.
	Volume
	// Random: a random point refined by one-way dominance tests, as in
	// OSP [23]: whenever a scanned point dominates the candidate, the
	// candidate is replaced.
	Random
)

// String returns the lowercase flag name for the strategy.
func (s Strategy) String() string {
	switch s {
	case Median:
		return "median"
	case Balanced:
		return "balanced"
	case Manhattan:
		return "manhattan"
	case Volume:
		return "volume"
	case Random:
		return "random"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Parse converts a CLI flag value into a Strategy.
func Parse(s string) (Strategy, error) {
	switch s {
	case "median":
		return Median, nil
	case "balanced":
		return Balanced, nil
	case "manhattan":
		return Manhattan, nil
	case "volume":
		return Volume, nil
	case "random":
		return Random, nil
	}
	return 0, fmt.Errorf("pivot: unknown strategy %q", s)
}

// AllStrategies lists the strategies in the order of Figure 9.
var AllStrategies = []Strategy{Balanced, Volume, Manhattan, Random, Median}

// medianSampleCap bounds the per-dimension sample used to compute medians
// so pivot selection stays O(n) even at paper-scale inputs.
const medianSampleCap = 50000

// Select computes the pivot for matrix m using strategy s. l1 must hold
// per-row L1 norms (it is required by Manhattan and used as a tiebreak
// elsewhere); seed drives the Random strategy deterministically. The
// returned slice is freshly allocated and never aliases m.
func Select(s Strategy, m point.Matrix, l1 []float64, seed int64) []float64 {
	return SelectInto(make([]float64, m.D()), nil, s, m, l1, seed)
}

// SelectInto is Select writing the pivot into dst (length m.D()) so
// reusable contexts avoid the per-run allocation. col is optional scratch
// for the Median strategy; passing a slice with capacity ≥
// MedianScratchLen(m.N()) makes Median allocation-free. The Random
// strategy seeds a fresh generator and is therefore not allocation-free.
func SelectInto(dst, col []float64, s Strategy, m point.Matrix, l1 []float64, seed int64) []float64 {
	n := m.N()
	if n == 0 {
		panic("pivot: empty input")
	}
	v := dst
	switch s {
	case Median:
		selectMedian(m, v, col)
	case Manhattan:
		copy(v, m.Row(argminL1(l1)))
	case Volume:
		copy(v, m.Row(argmaxDominatedVolume(m)))
	case Random:
		copy(v, m.Row(selectRandomSkyline(m, seed)))
	case Balanced:
		copy(v, m.Row(selectBalanced(m)))
	default:
		panic(fmt.Sprintf("pivot: invalid strategy %d", int(s)))
	}
	return v
}

func argminL1(l1 []float64) int {
	best := 0
	for i, v := range l1 {
		if v < l1[best] {
			best = i
		}
	}
	_ = best
	return best
}

// argmaxDominatedVolume returns the index maximizing Πᵢ (1 − p[i]). If q
// dominates p then every factor of q is ≥ the corresponding factor of p,
// so the maximizer cannot be dominated (for data in [0,1)).
func argmaxDominatedVolume(m point.Matrix) int {
	best, bestVol := 0, -1.0
	for i := 0; i < m.N(); i++ {
		vol := 1.0
		for _, x := range m.Row(i) {
			vol *= 1 - x
		}
		if vol > bestVol {
			best, bestVol = i, vol
		}
	}
	return best
}

// MedianScratchLen returns the scratch capacity SelectInto's Median
// strategy needs for an n-point input.
func MedianScratchLen(n int) int {
	step := 1
	if n > medianSampleCap {
		step = n / medianSampleCap
	}
	return n/step + 1
}

// selectMedian fills v with per-dimension medians, sampling large inputs.
// col is optional scratch (allocated here when too small). The median is
// found with an O(n) quickselect rather than a full sort — pivot
// selection is on the critical path of every Hybrid run.
func selectMedian(m point.Matrix, v []float64, col []float64) {
	n := m.N()
	step := 1
	if n > medianSampleCap {
		step = n / medianSampleCap
	}
	if cap(col) < n/step+1 {
		col = make([]float64, 0, n/step+1)
	}
	d := m.D()
	flat := m.Flat()
	for j := 0; j < d; j++ {
		col = col[:0]
		for i := j; i < n*d; i += step * d {
			col = append(col, flat[i])
		}
		v[j] = quickselect(col, len(col)/2)
	}
}

// quickselect returns the k-th smallest element of col (0-based),
// partially reordering col in place. Median-of-three pivots with an
// insertion-sort finish keep it robust on constant and sorted columns.
func quickselect(col []float64, k int) float64 {
	a, b := 0, len(col)
	for b-a > 12 {
		mid := int(uint(a+b) >> 1)
		if col[mid] < col[a] {
			col[mid], col[a] = col[a], col[mid]
		}
		if col[b-1] < col[mid] {
			col[b-1], col[mid] = col[mid], col[b-1]
			if col[mid] < col[a] {
				col[mid], col[a] = col[a], col[mid]
			}
		}
		p := col[mid]
		i, j := a, b-1
		for i <= j {
			for col[i] < p {
				i++
			}
			for col[j] > p {
				j--
			}
			if i <= j {
				col[i], col[j] = col[j], col[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			b = j + 1
		case k >= i:
			a = i
		default:
			return col[k] // k landed between the partitions: done
		}
	}
	sub := col[a:b]
	slices.Sort(sub)
	return col[k]
}

// selectRandomSkyline implements footnote 8: pick a uniform random point,
// then iterate the dataset conducting one-way dominance tests, replacing
// the candidate whenever it is dominated. The result is skyline with high
// probability (and always a real data point).
func selectRandomSkyline(m point.Matrix, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	cand := rng.Intn(m.N())
	d := m.D()
	for i := 0; i < m.N(); i++ {
		if point.DominatesD(m.Row(i), m.Row(cand), d) {
			cand = i
		}
	}
	return cand
}

// selectBalanced implements BSkyTree's balanced pivot: among points that
// survive one-way dominance refinement, choose the one minimizing the
// range (max − min) of min-max normalized coordinates. Balanced pivots
// yield partitions of similar size, maximizing region-wise
// incomparability.
func selectBalanced(m point.Matrix) int {
	n, d := m.N(), m.D()
	lo := make([]float64, d)
	hi := make([]float64, d)
	copy(lo, m.Row(0))
	copy(hi, m.Row(0))
	for i := 1; i < n; i++ {
		for j, x := range m.Row(i) {
			if x < lo[j] {
				lo[j] = x
			}
			if x > hi[j] {
				hi[j] = x
			}
		}
	}
	span := make([]float64, d)
	for j := range span {
		span[j] = hi[j] - lo[j]
		if span[j] == 0 {
			span[j] = 1 // constant dimension: normalized value 0 everywhere
		}
	}
	rangeOf := func(i int) float64 {
		mn, mx := 2.0, -1.0
		for j, x := range m.Row(i) {
			nv := (x - lo[j]) / span[j]
			if nv < mn {
				mn = nv
			}
			if nv > mx {
				mx = nv
			}
		}
		return mx - mn
	}
	cand := 0
	candRange := rangeOf(0)
	for i := 1; i < n; i++ {
		switch {
		case point.DominatesD(m.Row(i), m.Row(cand), d):
			cand, candRange = i, rangeOf(i)
		case point.DominatesD(m.Row(cand), m.Row(i), d):
			// i cannot be the pivot
		default:
			if r := rangeOf(i); r < candRange {
				cand, candRange = i, r
			}
		}
	}
	// Refinement pass: ensure no point dominates the final candidate.
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if point.DominatesD(m.Row(i), m.Row(cand), d) {
				cand, candRange = i, rangeOf(i)
				changed = true
			}
		}
	}
	return cand
}
