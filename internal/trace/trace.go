// Package trace defines the engine-level cost counters behind query
// tracing: the work measurements beyond the paper's per-phase timings
// and dominance-test counts that an EXPLAIN ANALYZE-style trace (and
// the adaptive planner's cost model) needs — prefilter effectiveness,
// points surviving each phase, and time spent in the three-key sort.
//
// The counters are plain integer stores accumulated unconditionally by
// the core algorithms into scratch that already exists (stats.Stats
// embeds a Cost), so they cost a handful of register writes per run and
// zero allocations: the public trace object is only materialized when a
// query asks for it.
package trace

import "time"

// Cost accumulates the extended work counters of one algorithm run.
// All fields are additive, so per-shard costs sum into a collection-
// level total.
type Cost struct {
	// PrefilterPruned is the number of input points discarded by the
	// β-queue prefilter before the main algorithm ran (zero for Q-Flow
	// and for prefilter-disabled ablations).
	PrefilterPruned int
	// Phase1Survivors is the total number of block points that survived
	// Phase I (the comparison against the global skyline) across all
	// α-blocks — the workload Phase II actually sees.
	Phase1Survivors int
	// Phase2Survivors is the total number of points that survived
	// Phase II (the peer comparison) across all α-blocks; for a run
	// that completes this equals the output size.
	Phase2Survivors int
	// Sort is the wall-clock time of the sort step (Hybrid's three-key
	// radix + per-run L1 sorts, Q-Flow's L1 radix sort), a subset of
	// the init phase that the paper's phase decomposition folds away.
	Sort time.Duration
}

// Add accumulates other into c.
func (c *Cost) Add(other Cost) {
	c.PrefilterPruned += other.PrefilterPruned
	c.Phase1Survivors += other.Phase1Survivors
	c.Phase2Survivors += other.Phase2Survivors
	c.Sort += other.Sort
}

// Scale divides all counters by k (completing an average over k runs).
func (c *Cost) Scale(k int) {
	if k <= 1 {
		return
	}
	c.PrefilterPruned /= k
	c.Phase1Survivors /= k
	c.Phase2Survivors /= k
	c.Sort /= time.Duration(k)
}
