package verify

import (
	"testing"

	"skybench/internal/dataset"
	"skybench/internal/point"
)

func TestBruteForcePaperExample(t *testing.T) {
	// Figure 1a of the paper: p,r,s,t in the skyline, q dominated by p.
	m := point.FromRows([][]float64{
		{2, 4}, // p
		{4, 6}, // q (dominated by p)
		{1, 7}, // r
		{5, 2}, // s
		{8, 1}, // t
	})
	got := BruteForce(m)
	want := []int{0, 2, 3, 4}
	if !SameSkyline(got, want) {
		t.Fatalf("BruteForce = %v, want %v", got, want)
	}
}

func TestBruteForceDuplicatesBothSurvive(t *testing.T) {
	m := point.FromRows([][]float64{
		{1, 1},
		{1, 1}, // coincident with point 0: both in skyline
		{2, 2}, // dominated
	})
	got := BruteForce(m)
	if !SameSkyline(got, []int{0, 1}) {
		t.Fatalf("duplicates: got %v", got)
	}
}

func TestBruteForceSinglePointAndEmpty(t *testing.T) {
	if got := BruteForce(point.FromRows([][]float64{{5}})); len(got) != 1 {
		t.Fatalf("single point: %v", got)
	}
	if got := BruteForce(point.Matrix{}); len(got) != 0 {
		t.Fatalf("empty: %v", got)
	}
}

func TestIsSkyline(t *testing.T) {
	m := point.FromRows([][]float64{{1, 2}, {2, 1}, {3, 3}})
	if !IsSkyline(m, []int{0, 1}) {
		t.Error("correct skyline rejected")
	}
	if IsSkyline(m, []int{0}) {
		t.Error("missing point accepted")
	}
	if IsSkyline(m, []int{0, 1, 2}) {
		t.Error("dominated point accepted")
	}
	if IsSkyline(m, []int{0, 0}) {
		t.Error("duplicate index accepted")
	}
	if IsSkyline(m, []int{0, 5}) {
		t.Error("out-of-range index accepted")
	}
}

func TestBruteForceSatisfiesIsSkyline(t *testing.T) {
	for _, dist := range dataset.AllDistributions {
		m := dataset.Generate(dist, 300, 4, 17)
		if !IsSkyline(m, BruteForce(m)) {
			t.Fatalf("%v: oracle disagrees with itself", dist)
		}
	}
}

func TestSameSkyline(t *testing.T) {
	if !SameSkyline([]int{3, 1, 2}, []int{1, 2, 3}) {
		t.Error("order should not matter")
	}
	if SameSkyline([]int{1, 2}, []int{1, 3}) {
		t.Error("different sets accepted")
	}
	if SameSkyline([]int{1}, []int{1, 2}) {
		t.Error("different lengths accepted")
	}
}

func TestSamePoints(t *testing.T) {
	m := point.FromRows([][]float64{{1, 2}, {2, 1}, {1, 2}})
	// Index sets {0,1} and {2,1} select the same point values.
	if !SamePoints(m, []int{0, 1}, m, []int{2, 1}) {
		t.Error("coincident rows should compare equal by value")
	}
	if SamePoints(m, []int{0}, m, []int{1}) {
		t.Error("different values accepted")
	}
}
