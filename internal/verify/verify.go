// Package verify provides a brute-force skyline oracle and result
// comparison helpers used by the test suites of every algorithm package.
package verify

import (
	"sort"
	"strconv"

	"skybench/internal/point"
)

// BruteForce computes SKY(P) by the O(n²) definition: a point is in the
// skyline iff no other point dominates it (Definition 3). Coincident
// duplicates of a skyline point are all included, since coincident points
// never dominate each other (Definition 2). It returns ascending indices
// into m and is the correctness oracle for all algorithm tests.
func BruteForce(m point.Matrix) []int {
	n := m.N()
	var out []int
	for i := 0; i < n; i++ {
		p := m.Row(i)
		dominated := false
		for j := 0; j < n && !dominated; j++ {
			if j != i && point.Dominates(m.Row(j), p) {
				dominated = true
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out
}

// BruteForceSkyband computes the k-skyband of m by the O(n²)
// definition: every point strictly dominated by fewer than k other
// points, together with each member's exact dominator count. It returns
// ascending indices into m with counts parallel to them, and is the
// correctness oracle for the SkybandK query path and the stream
// maintenance tests. k ≤ 1 degenerates to the skyline with all-zero
// counts.
func BruteForceSkyband(m point.Matrix, k int) ([]int, []int32) {
	if k < 1 {
		k = 1
	}
	n := m.N()
	var out []int
	var counts []int32
	for i := 0; i < n; i++ {
		p := m.Row(i)
		doms := 0
		for j := 0; j < n && doms < k; j++ {
			if j != i && point.Dominates(m.Row(j), p) {
				doms++
			}
		}
		if doms < k {
			out = append(out, i)
			counts = append(counts, int32(doms))
		}
	}
	return out, counts
}

// SameBand reports whether two k-skyband results select the same set of
// input positions with the same per-point dominator counts. Order is
// ignored. Counts must be nil on both sides (skyline results carry no
// counts) or on neither — one-sided nil is a contract violation, not a
// skipped comparison, so a path that loses its counts cannot pass.
func SameBand(aIdx []int, aCnt []int32, bIdx []int, bCnt []int32) bool {
	if len(aIdx) != len(bIdx) {
		return false
	}
	if (aCnt == nil) != (bCnt == nil) {
		return false
	}
	am := make(map[int]int32, len(aIdx))
	for i, j := range aIdx {
		c := int32(-1)
		if aCnt != nil {
			c = aCnt[i]
		}
		am[j] = c
	}
	if len(am) != len(aIdx) {
		return false // duplicate indices
	}
	seen := make(map[int]bool, len(bIdx))
	for i, j := range bIdx {
		if seen[j] {
			return false // duplicate indices on the b side
		}
		seen[j] = true
		c, ok := am[j]
		if !ok {
			return false
		}
		if aCnt != nil && bCnt != nil && c != bCnt[i] {
			return false
		}
	}
	return true
}

// SameSkyline reports whether two skyline results over the same matrix
// select exactly the same set of input positions. Order is ignored.
func SameSkyline(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// SamePoints reports whether two skyline results over the same matrix
// contain the same multiset of point values. This is the right comparison
// when an algorithm reorders its input internally and cannot preserve
// original indices.
func SamePoints(m point.Matrix, a []int, mb point.Matrix, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	ka := sortedKeys(m, a)
	kb := sortedKeys(mb, b)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// sortedKeys renders each selected row to a canonical string key and
// sorts them, giving a canonical multiset representation.
func sortedKeys(m point.Matrix, idx []int) []string {
	keys := make([]string, len(idx))
	for i, j := range idx {
		row := m.Row(j)
		buf := make([]byte, 0, len(row)*8)
		for _, v := range row {
			buf = strconv.AppendFloat(buf, v, 'g', -1, 64)
			buf = append(buf, ',')
		}
		keys[i] = string(buf)
	}
	sort.Strings(keys)
	return keys
}

// IsSkyline checks from first principles that idx is exactly SKY(m): it
// selects precisely the points not dominated by any other input point,
// with no duplicate or out-of-range indices. O(n²); test-only.
func IsSkyline(m point.Matrix, idx []int) bool {
	sel := make([]bool, m.N())
	for _, i := range idx {
		if i < 0 || i >= m.N() || sel[i] {
			return false
		}
		sel[i] = true
	}
	for i := 0; i < m.N(); i++ {
		dominated := false
		for j := 0; j < m.N() && !dominated; j++ {
			if j != i && point.Dominates(m.Row(j), m.Row(i)) {
				dominated = true
			}
		}
		if sel[i] == dominated {
			return false
		}
	}
	return true
}
