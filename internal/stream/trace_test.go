package stream

import (
	"bytes"
	"math"
	"slices"
	"testing"

	"skybench/internal/dataset"
)

func TestGenerateTraceShape(t *testing.T) {
	tr := GenerateTrace(dataset.Independent, 100, 400, 5, 0.3, 7)
	if tr.D != 5 || tr.Warm != 100 || len(tr.Ops) != 500 || tr.Updates() != 400 {
		t.Fatalf("trace shape: d=%d warm=%d ops=%d", tr.D, tr.Warm, len(tr.Ops))
	}
	deletes := 0
	live := map[uint64]bool{}
	lastTS := int64(-1)
	for i, op := range tr.Ops {
		if op.TS <= lastTS {
			t.Fatalf("op %d: timestamp %d not monotone after %d", i, op.TS, lastTS)
		}
		lastTS = op.TS
		switch op.Kind {
		case OpInsert:
			if len(op.Row) != tr.D {
				t.Fatalf("op %d: insert row has %d values", i, len(op.Row))
			}
			if live[op.Key] {
				t.Fatalf("op %d: key %d inserted twice", i, op.Key)
			}
			live[op.Key] = true
		case OpDelete:
			if i < tr.Warm {
				t.Fatalf("op %d: delete during warmup", i)
			}
			if !live[op.Key] {
				t.Fatalf("op %d: delete of dead key %d", i, op.Key)
			}
			delete(live, op.Key)
			deletes++
		}
	}
	// Churn 0.3 over 400 updates: expect deletes in a generous band.
	if deletes < 60 || deletes > 180 {
		t.Fatalf("churn 0.3 produced %d deletes of 400 updates", deletes)
	}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	a := GenerateTrace(dataset.Anticorrelated, 50, 200, 4, 0.5, 3)
	b := GenerateTrace(dataset.Anticorrelated, 50, 200, 4, 0.5, 3)
	if len(a.Ops) != len(b.Ops) {
		t.Fatalf("lengths differ")
	}
	for i := range a.Ops {
		if a.Ops[i].Kind != b.Ops[i].Kind || a.Ops[i].Key != b.Ops[i].Key ||
			!slices.Equal(a.Ops[i].Row, b.Ops[i].Row) {
			t.Fatalf("op %d differs between identical seeds", i)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := GenerateTrace(dataset.Correlated, 30, 120, 3, 0.4, 5)
	// Exercise full float64 precision through the text format.
	tr.Ops[0].Row[0] = math.Nextafter(1, 2) / 3

	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.D != tr.D || got.Warm != tr.Warm || len(got.Ops) != len(tr.Ops) {
		t.Fatalf("round-trip shape: d=%d warm=%d ops=%d", got.D, got.Warm, len(got.Ops))
	}
	for i := range tr.Ops {
		a, b := tr.Ops[i], got.Ops[i]
		if a.TS != b.TS || a.Kind != b.Kind || a.Key != b.Key || !slices.Equal(a.Row, b.Row) {
			t.Fatalf("op %d: %+v != %+v", i, a, b)
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"not a header\n",
		"#trace d=0 warm=0\n",
		"#trace d=2 warm=0\n1,x,5\n",
		"#trace d=2 warm=0\n1,i,5,0.5\n",                 // short insert row
		"#trace d=2 warm=9\n1,i,5,0.5,0.5\n",             // warm beyond ops
		"#trace d=2 warm=0\n1,i,bad,0.5,0.5\n",           // bad key
		"#trace d=2 warm=0\nbad,i,5,0.5,0.5\n",           // bad timestamp
		"#trace d=2 warm=0\n1,i,5,zero point five,0.5\n", // bad value
	} {
		if _, err := ReadTrace(bytes.NewBufferString(bad)); err == nil {
			t.Fatalf("trace %q parsed without error", bad)
		}
	}
}
