package stream

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"skybench/internal/dataset"
	"skybench/internal/point"
)

// bruteSkyline computes the exact skyline slots of the live set by the
// n² definition, as the oracle for the maintained structure.
func bruteSkyline(ix *Index, liveSlots []int32) []int32 {
	var sky []int32
	for _, s := range liveSlots {
		dominated := false
		for _, t := range liveSlots {
			if t != s && point.DominatesFlat(ix.vals, int(t)*ix.d, int(s)*ix.d, ix.d) {
				dominated = true
				break
			}
		}
		if !dominated {
			sky = append(sky, s)
		}
	}
	slices.Sort(sky)
	return sky
}

func sortedSkyline(ix *Index) []int32 {
	sky := slices.Clone(ix.Skyline())
	slices.Sort(sky)
	return sky
}

// runRandomOps drives an index through a random insert/delete mix over a
// generated workload, cross-checking membership against the brute-force
// oracle and the structural invariants along the way.
func runRandomOps(t *testing.T, dist dataset.Distribution, d, nOps int, churn float64, quantize int, opt Options, seed int64) {
	t.Helper()
	m := dataset.Generate(dist, nOps, d, seed)
	if quantize > 0 {
		dataset.Quantize(m, quantize)
	}
	rng := rand.New(rand.NewSource(seed + 1))

	// Shadow membership maintained from events, to check the callbacks
	// tell the exact same story as the structure.
	inSky := make(map[int32]bool)
	opt.OnEnter = func(slot int32) {
		if inSky[slot] {
			t.Fatalf("enter event for slot %d already in skyline", slot)
		}
		inSky[slot] = true
	}
	opt.OnLeave = func(slot int32) {
		if !inSky[slot] {
			t.Fatalf("leave event for slot %d not in skyline", slot)
		}
		delete(inSky, slot)
	}

	ix := New(d, opt)
	var live []int32
	next := 0
	for op := 0; op < nOps; op++ {
		if len(live) > 0 && rng.Float64() < churn {
			i := rng.Intn(len(live))
			slot := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if !ix.Delete(slot) {
				t.Fatalf("delete of live slot %d reported dead", slot)
			}
		} else if next < m.N() {
			slot, entered := ix.Insert(m.Row(next))
			next++
			live = append(live, slot)
			if entered != ix.InSkyline(slot) {
				t.Fatalf("Insert entered=%v but InSkyline=%v", entered, ix.InSkyline(slot))
			}
		}
		if op%16 == 15 || op == nOps-1 {
			ix.Validate()
			got := sortedSkyline(ix)
			want := bruteSkyline(ix, live)
			if !slices.Equal(got, want) {
				t.Fatalf("op %d (%s d=%d): skyline %v, oracle %v", op, dist, d, got, want)
			}
			var fromEvents []int32
			for s := range inSky {
				fromEvents = append(fromEvents, s)
			}
			slices.Sort(fromEvents)
			if !slices.Equal(fromEvents, want) {
				t.Fatalf("op %d: event-tracked skyline %v, oracle %v", op, fromEvents, want)
			}
		}
	}
	if ix.Len() != len(live) {
		t.Fatalf("live count %d, want %d", ix.Len(), len(live))
	}
}

func TestIndexMatchesBruteForce(t *testing.T) {
	for _, dist := range dataset.AllDistributions {
		for _, d := range []int{1, 2, 4, 7, 8} {
			runRandomOps(t, dist, d, 400, 0.35, 0, Options{}, int64(100*d)+int64(dist))
		}
	}
}

func TestIndexDuplicateHeavy(t *testing.T) {
	// Coarse quantization produces many coincident points; coincident
	// skyline points must all be retained and survive churn.
	runRandomOps(t, dataset.Independent, 3, 500, 0.4, 3, Options{}, 9)
	runRandomOps(t, dataset.Anticorrelated, 5, 400, 0.3, 4, Options{}, 10)
}

func TestIndexFrequentRebuilds(t *testing.T) {
	// A tiny threshold forces the escalation path constantly; results
	// must not change.
	runRandomOps(t, dataset.Independent, 6, 400, 0.45, 0, Options{RebuildFraction: 0.01}, 11)
}

func TestIndexNoRebuilds(t *testing.T) {
	runRandomOps(t, dataset.Anticorrelated, 4, 400, 0.45, 0, Options{RebuildFraction: math.Inf(1)}, 12)
}

// TestIndexRebuildHook drives the escalation path through an external
// hook (a brute-force stand-in for the Engine) and checks both that it
// is consulted and that membership is preserved across rebuilds.
func TestIndexRebuildHook(t *testing.T) {
	const d = 4
	calls := 0
	opt := Options{
		RebuildFraction: 0.05,
		Rebuild: func(vals []float64, n int) []int {
			calls++
			var sky []int
			for i := 0; i < n; i++ {
				dominated := false
				for j := 0; j < n && !dominated; j++ {
					dominated = j != i && point.DominatesFlat(vals, j*d, i*d, d)
				}
				if !dominated {
					sky = append(sky, i)
				}
			}
			return sky
		},
	}
	// Enough points that rebuilds exceed rebuildMinEngine and actually
	// reach the hook.
	runRandomOps(t, dataset.Independent, d, 900, 0.25, 0, opt, 13)
	if calls == 0 {
		t.Fatalf("rebuild hook never invoked")
	}
}

// TestIndexRebuildPreservesMembership checks the invariant rebuilds rely
// on: recomputing the live set's skyline yields the maintained set, so a
// forced rebuild must not fire events or change membership.
func TestIndexRebuildPreservesMembership(t *testing.T) {
	m := dataset.Generate(dataset.Anticorrelated, 300, 6, 21)
	events := 0
	ix := New(6, Options{
		OnEnter: func(int32) { events++ },
		OnLeave: func(int32) { events++ },
	})
	for i := 0; i < m.N(); i++ {
		ix.Insert(m.Row(i))
	}
	before := sortedSkyline(ix)
	eventsBefore := events
	ix.Rebuild()
	ix.Validate()
	if events != eventsBefore {
		t.Fatalf("rebuild fired %d events", events-eventsBefore)
	}
	if got := sortedSkyline(ix); !slices.Equal(got, before) {
		t.Fatalf("rebuild changed membership: %v -> %v", before, got)
	}
	if ix.Stats().Rebuilds == 0 {
		t.Fatalf("rebuild not counted")
	}
}

func TestIndexEmptyAndSingle(t *testing.T) {
	ix := New(3, Options{})
	if ix.Len() != 0 || ix.SkylineSize() != 0 {
		t.Fatalf("empty index reports %d/%d", ix.Len(), ix.SkylineSize())
	}
	if ix.Delete(0) {
		t.Fatalf("delete on empty index reported live")
	}
	slot, entered := ix.Insert([]float64{1, 2, 3})
	if !entered || ix.SkylineSize() != 1 {
		t.Fatalf("single insert must enter the skyline")
	}
	if !ix.Delete(slot) || ix.Len() != 0 || ix.SkylineSize() != 0 {
		t.Fatalf("delete of only point must empty the index")
	}
	if ix.Delete(slot) {
		t.Fatalf("double delete reported live")
	}
}
