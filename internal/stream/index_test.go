package stream

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"skybench/internal/dataset"
	"skybench/internal/point"
)

// bruteBand computes the exact k-skyband slots of the live set by the
// n² definition, with each member's dominator count, as the oracle for
// the maintained structure. k = 1 degenerates to the skyline.
func bruteBand(ix *Index, liveSlots []int32, k int) ([]int32, map[int32]int32) {
	var band []int32
	counts := make(map[int32]int32)
	for _, s := range liveSlots {
		doms := 0
		for _, t := range liveSlots {
			if t != s && point.DominatesFlat(ix.vals, int(t)*ix.d, int(s)*ix.d, ix.d) {
				doms++
			}
		}
		if doms < k {
			band = append(band, s)
			counts[s] = int32(doms)
		}
	}
	slices.Sort(band)
	return band, counts
}

// bruteSkyline is bruteBand at k = 1, without the counts.
func bruteSkyline(ix *Index, liveSlots []int32) []int32 {
	band, _ := bruteBand(ix, liveSlots, 1)
	return band
}

func sortedSkyline(ix *Index) []int32 {
	sky := slices.Clone(ix.Skyline())
	slices.Sort(sky)
	return sky
}

// runRandomOps drives an index through a random insert/delete mix over a
// generated workload, cross-checking membership against the brute-force
// oracle and the structural invariants along the way.
func runRandomOps(t *testing.T, dist dataset.Distribution, d, nOps int, churn float64, quantize int, opt Options, seed int64) {
	t.Helper()
	m := dataset.Generate(dist, nOps, d, seed)
	if quantize > 0 {
		dataset.Quantize(m, quantize)
	}
	rng := rand.New(rand.NewSource(seed + 1))

	// Shadow membership maintained from events, to check the callbacks
	// tell the exact same story as the structure.
	inSky := make(map[int32]bool)
	opt.OnEnter = func(slot int32) {
		if inSky[slot] {
			t.Fatalf("enter event for slot %d already in skyline", slot)
		}
		inSky[slot] = true
	}
	opt.OnLeave = func(slot int32) {
		if !inSky[slot] {
			t.Fatalf("leave event for slot %d not in skyline", slot)
		}
		delete(inSky, slot)
	}

	ix := New(d, opt)
	var live []int32
	next := 0
	for op := 0; op < nOps; op++ {
		if len(live) > 0 && rng.Float64() < churn {
			i := rng.Intn(len(live))
			slot := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if !ix.Delete(slot) {
				t.Fatalf("delete of live slot %d reported dead", slot)
			}
		} else if next < m.N() {
			slot, entered := ix.Insert(m.Row(next))
			next++
			live = append(live, slot)
			if entered != ix.InSkyline(slot) {
				t.Fatalf("Insert entered=%v but InSkyline=%v", entered, ix.InSkyline(slot))
			}
		}
		if op%16 == 15 || op == nOps-1 {
			ix.Validate()
			got := sortedSkyline(ix)
			want, wantCnt := bruteBand(ix, live, ix.K())
			if !slices.Equal(got, want) {
				t.Fatalf("op %d (%s d=%d k=%d): band %v, oracle %v", op, dist, d, ix.K(), got, want)
			}
			for _, s := range got {
				if c := ix.DominatorCount(s); c != wantCnt[s] {
					t.Fatalf("op %d (%s d=%d k=%d): slot %d count %d, oracle %d", op, dist, d, ix.K(), s, c, wantCnt[s])
				}
			}
			var fromEvents []int32
			for s := range inSky {
				fromEvents = append(fromEvents, s)
			}
			slices.Sort(fromEvents)
			if !slices.Equal(fromEvents, want) {
				t.Fatalf("op %d: event-tracked band %v, oracle %v", op, fromEvents, want)
			}
		}
	}
	if ix.Len() != len(live) {
		t.Fatalf("live count %d, want %d", ix.Len(), len(live))
	}
}

func TestIndexMatchesBruteForce(t *testing.T) {
	for _, dist := range dataset.AllDistributions {
		for _, d := range []int{1, 2, 4, 7, 8} {
			runRandomOps(t, dist, d, 400, 0.35, 0, Options{}, int64(100*d)+int64(dist))
		}
	}
}

func TestIndexDuplicateHeavy(t *testing.T) {
	// Coarse quantization produces many coincident points; coincident
	// skyline points must all be retained and survive churn.
	runRandomOps(t, dataset.Independent, 3, 500, 0.4, 3, Options{}, 9)
	runRandomOps(t, dataset.Anticorrelated, 5, 400, 0.3, 4, Options{}, 10)
}

func TestIndexFrequentRebuilds(t *testing.T) {
	// A tiny threshold forces the escalation path constantly; results
	// must not change.
	runRandomOps(t, dataset.Independent, 6, 400, 0.45, 0, Options{RebuildFraction: 0.01}, 11)
}

func TestIndexNoRebuilds(t *testing.T) {
	runRandomOps(t, dataset.Anticorrelated, 4, 400, 0.45, 0, Options{RebuildFraction: math.Inf(1)}, 12)
}

// TestIndexRebuildHook drives the escalation path through an external
// hook (a brute-force stand-in for the Engine) and checks both that it
// is consulted and that membership is preserved across rebuilds.
func TestIndexRebuildHook(t *testing.T) {
	const d = 4
	calls := 0
	opt := Options{
		RebuildFraction: 0.05,
		Rebuild: func(vals []float64, n int) ([]int, []int32) {
			calls++
			var sky []int
			for i := 0; i < n; i++ {
				dominated := false
				for j := 0; j < n && !dominated; j++ {
					dominated = j != i && point.DominatesFlat(vals, j*d, i*d, d)
				}
				if !dominated {
					sky = append(sky, i)
				}
			}
			return sky, nil
		},
	}
	// Enough points that rebuilds exceed rebuildMinEngine and actually
	// reach the hook.
	runRandomOps(t, dataset.Independent, d, 900, 0.25, 0, opt, 13)
	if calls == 0 {
		t.Fatalf("rebuild hook never invoked")
	}
}

// TestIndexRebuildPreservesMembership checks the invariant rebuilds rely
// on: recomputing the live set's skyline yields the maintained set, so a
// forced rebuild must not fire events or change membership.
func TestIndexRebuildPreservesMembership(t *testing.T) {
	m := dataset.Generate(dataset.Anticorrelated, 300, 6, 21)
	events := 0
	ix := New(6, Options{
		OnEnter: func(int32) { events++ },
		OnLeave: func(int32) { events++ },
	})
	for i := 0; i < m.N(); i++ {
		ix.Insert(m.Row(i))
	}
	before := sortedSkyline(ix)
	eventsBefore := events
	ix.Rebuild()
	ix.Validate()
	if events != eventsBefore {
		t.Fatalf("rebuild fired %d events", events-eventsBefore)
	}
	if got := sortedSkyline(ix); !slices.Equal(got, before) {
		t.Fatalf("rebuild changed membership: %v -> %v", before, got)
	}
	if ix.Stats().Rebuilds == 0 {
		t.Fatalf("rebuild not counted")
	}
}

// TestIndexSkybandMatchesBruteForce drives the k > 1 maintenance —
// multi-owner registrations, count decrements, delete promotions —
// through the same random-churn harness, which cross-checks membership
// AND exact dominator counts against the n² oracle.
func TestIndexSkybandMatchesBruteForce(t *testing.T) {
	for _, dist := range dataset.AllDistributions {
		for _, d := range []int{1, 2, 4, 7} {
			for _, k := range []int{2, 3, 5} {
				runRandomOps(t, dist, d, 350, 0.35, 0, Options{K: k}, int64(1000*d+10*k)+int64(dist))
			}
		}
	}
}

func TestIndexSkybandDuplicateHeavy(t *testing.T) {
	// Coincident points never dominate each other, so duplicates on the
	// band boundary must all stay in (or out) together.
	runRandomOps(t, dataset.Independent, 3, 400, 0.4, 3, Options{K: 2}, 29)
	runRandomOps(t, dataset.Anticorrelated, 4, 350, 0.3, 4, Options{K: 4}, 31)
}

func TestIndexSkybandFrequentRebuilds(t *testing.T) {
	runRandomOps(t, dataset.Independent, 5, 350, 0.45, 0, Options{K: 3, RebuildFraction: 0.01}, 37)
}

func TestIndexSkybandNoRebuilds(t *testing.T) {
	runRandomOps(t, dataset.Anticorrelated, 4, 350, 0.45, 0, Options{K: 2, RebuildFraction: math.Inf(1)}, 41)
}

// TestIndexSkybandRebuildHook drives escalation through an external
// k-skyband hook that returns counts, as the public Engine-backed hook
// does.
func TestIndexSkybandRebuildHook(t *testing.T) {
	const d, k = 4, 3
	calls := 0
	opt := Options{
		K:               k,
		RebuildFraction: 0.05,
		Rebuild: func(vals []float64, n int) ([]int, []int32) {
			calls++
			var band []int
			var counts []int32
			for i := 0; i < n; i++ {
				doms := 0
				for j := 0; j < n && doms < k; j++ {
					if j != i && point.DominatesFlat(vals, j*d, i*d, d) {
						doms++
					}
				}
				if doms < k {
					band = append(band, i)
					counts = append(counts, int32(doms))
				}
			}
			return band, counts
		},
	}
	runRandomOps(t, dataset.Independent, d, 900, 0.25, 0, opt, 43)
	if calls == 0 {
		t.Fatalf("rebuild hook never invoked")
	}
}

// TestIndexKGENn checks k ≥ n: with more budget than points, everything
// is in the band and deletes never promote (there is nothing out of
// band to promote).
func TestIndexKGENn(t *testing.T) {
	m := dataset.Generate(dataset.Anticorrelated, 40, 3, 5)
	ix := New(3, Options{K: 1000})
	var slots []int32
	for i := 0; i < m.N(); i++ {
		slot, entered := ix.Insert(m.Row(i))
		if !entered {
			t.Fatalf("insert %d left the band with k=1000 > n", i)
		}
		slots = append(slots, slot)
	}
	if ix.SkylineSize() != m.N() {
		t.Fatalf("band size %d, want %d", ix.SkylineSize(), m.N())
	}
	ix.Validate()
	for _, s := range slots {
		ix.Delete(s)
		ix.Validate()
	}
	if ix.Len() != 0 || ix.SkylineSize() != 0 {
		t.Fatalf("index not empty after deleting everything")
	}
}

func TestIndexEmptyAndSingle(t *testing.T) {
	ix := New(3, Options{})
	if ix.Len() != 0 || ix.SkylineSize() != 0 {
		t.Fatalf("empty index reports %d/%d", ix.Len(), ix.SkylineSize())
	}
	if ix.Delete(0) {
		t.Fatalf("delete on empty index reported live")
	}
	slot, entered := ix.Insert([]float64{1, 2, 3})
	if !entered || ix.SkylineSize() != 1 {
		t.Fatalf("single insert must enter the skyline")
	}
	if !ix.Delete(slot) || ix.Len() != 0 || ix.SkylineSize() != 0 {
		t.Fatalf("delete of only point must empty the index")
	}
	if ix.Delete(slot) {
		t.Fatalf("double delete reported live")
	}
}
