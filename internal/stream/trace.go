package stream

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"skybench/internal/dataset"
)

// Update traces: a reproducible sequence of timestamped inserts and
// deletes that streambench, datagen -stream, and the tests share, so a
// workload measured on the command line is byte-identical to the one a
// test replays.

// OpKind distinguishes trace operations.
type OpKind uint8

const (
	// OpInsert adds a new point under a fresh key.
	OpInsert OpKind = iota
	// OpDelete removes the point inserted under Key.
	OpDelete
)

// Op is one trace operation. TS is a synthetic monotone timestamp (one
// tick per operation); Row is nil for deletes and aliases the trace's
// shared storage for inserts.
type Op struct {
	TS   int64
	Kind OpKind
	Key  uint64
	Row  []float64
}

// Trace is a timestamped update workload: Warm leading inserts that
// build the initial state, followed by a measured insert/delete mix.
type Trace struct {
	D    int
	Warm int
	Ops  []Op
}

// Updates returns the number of post-warmup operations.
func (t *Trace) Updates() int { return len(t.Ops) - t.Warm }

// GenerateTrace produces a deterministic update trace: warm inserts of
// the given distribution followed by updates operations of which a churn
// fraction are deletes of a uniformly random live key (an op that would
// delete from an empty set inserts instead). Keys are assigned
// sequentially from 1.
func GenerateTrace(dist dataset.Distribution, warm, updates, d int, churn float64, seed int64) *Trace {
	if warm < 0 || updates < 0 {
		panic("stream: negative trace size")
	}
	// warm+updates rows is an upper bound on inserts; rows are consumed
	// in order so the values only depend on (dist, d, seed).
	m := dataset.Generate(dist, warm+updates, d, seed)
	rng := rand.New(rand.NewSource(seed + 1))

	tr := &Trace{D: d, Warm: warm, Ops: make([]Op, 0, warm+updates)}
	var live []uint64
	nextKey := uint64(1)
	nextRow := 0
	insert := func(ts int64) {
		key := nextKey
		nextKey++
		tr.Ops = append(tr.Ops, Op{TS: ts, Kind: OpInsert, Key: key, Row: m.Row(nextRow)})
		nextRow++
		live = append(live, key)
	}
	for i := 0; i < warm; i++ {
		insert(int64(i))
	}
	for i := 0; i < updates; i++ {
		ts := int64(warm + i)
		if len(live) > 0 && rng.Float64() < churn {
			j := rng.Intn(len(live))
			key := live[j]
			last := len(live) - 1
			live[j] = live[last]
			live = live[:last]
			tr.Ops = append(tr.Ops, Op{TS: ts, Kind: OpDelete, Key: key})
		} else {
			insert(ts)
		}
	}
	return tr
}

// WriteTrace serializes a trace: a header line
//
//	#trace d=<dims> warm=<warm>
//
// followed by one CSV record per op — "ts,i,key,v0,...,vd-1" for inserts
// and "ts,d,key" for deletes — with full float64 round-trip precision.
func WriteTrace(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "#trace d=%d warm=%d\n", tr.D, tr.Warm); err != nil {
		return err
	}
	cw := csv.NewWriter(bw)
	rec := make([]string, 0, 3+tr.D)
	for i, op := range tr.Ops {
		rec = rec[:0]
		rec = append(rec, strconv.FormatInt(op.TS, 10))
		switch op.Kind {
		case OpInsert:
			rec = append(rec, "i", strconv.FormatUint(op.Key, 10))
			for _, v := range op.Row {
				rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
			}
		case OpDelete:
			rec = append(rec, "d", strconv.FormatUint(op.Key, 10))
		default:
			return fmt.Errorf("stream: op %d has invalid kind %d", i, op.Kind)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("stream: writing op %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("stream: reading trace header: %w", err)
	}
	tr := &Trace{}
	if _, err := fmt.Sscanf(strings.TrimSpace(header), "#trace d=%d warm=%d", &tr.D, &tr.Warm); err != nil {
		return nil, fmt.Errorf("stream: bad trace header %q: %w", strings.TrimSpace(header), err)
	}
	if tr.D < 1 {
		return nil, fmt.Errorf("stream: trace dimensionality %d out of range", tr.D)
	}
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = -1 // inserts and deletes have different arity
	cr.ReuseRecord = true
	// One shared arena keeps all insert rows contiguous.
	var vals []float64
	for lineNo := 2; ; lineNo++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("stream: trace line %d: %w", lineNo, err)
		}
		if len(rec) < 3 {
			return nil, fmt.Errorf("stream: trace line %d has %d fields, want at least 3", lineNo, len(rec))
		}
		ts, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: trace line %d timestamp: %w", lineNo, err)
		}
		key, err := strconv.ParseUint(rec[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stream: trace line %d key: %w", lineNo, err)
		}
		op := Op{TS: ts, Key: key}
		switch rec[1] {
		case "i":
			if len(rec) != 3+tr.D {
				return nil, fmt.Errorf("stream: trace line %d insert has %d values, want %d", lineNo, len(rec)-3, tr.D)
			}
			start := len(vals)
			for j, f := range rec[3:] {
				v, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return nil, fmt.Errorf("stream: trace line %d value %d: %w", lineNo, j+1, err)
				}
				vals = append(vals, v)
			}
			op.Row = vals[start : start+tr.D : start+tr.D]
		case "d":
			op.Kind = OpDelete
		default:
			return nil, fmt.Errorf("stream: trace line %d has unknown op %q", lineNo, rec[1])
		}
		tr.Ops = append(tr.Ops, op)
	}
	// The arena may have been reallocated by growth; re-point the rows.
	off := 0
	for i := range tr.Ops {
		if tr.Ops[i].Kind == OpInsert {
			tr.Ops[i].Row = vals[off : off+tr.D : off+tr.D]
			off += tr.D
		}
	}
	if tr.Warm > len(tr.Ops) {
		return nil, fmt.Errorf("stream: trace header claims %d warm ops, file has %d", tr.Warm, len(tr.Ops))
	}
	return tr, nil
}

// WriteTraceFile writes a trace to path.
func WriteTraceFile(path string, tr *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTraceFile reads a trace from path.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}
