// Package stream implements the incremental skyline maintenance core
// behind the public skybench/stream package: a mutable index over staged
// (all-minimized) points that keeps the exact skyline current under
// inserts and deletes without recomputing it from scratch.
//
// The design is built on one invariant of the dominance relation: every
// non-skyline point is filed in the exclusive-dominance "bucket" of one
// skyline point that dominates it (its owner). An insert probes the
// dense skyline matrix with the flat kernels of internal/point — a
// dominated probe is bucketed under the dominator the scan finds; an
// undominated probe enters the skyline and any skyline points it
// dominates are demoted into its bucket (together with their buckets,
// since dominance is transitive). Deleting a bucketed point is O(1);
// deleting a skyline point re-resolves only its own bucket, because a
// point dominated by the deleted owner cannot dominate any surviving
// skyline point (transitivity again), so recovery can only add points.
//
// Bucket re-resolution work is accrued in a dirty counter; when it
// exceeds a configurable fraction of the live set, the index escalates
// to a full recompute (through a pluggable hook — the public package
// supplies an Engine-backed one) that also rebalances every bucket and
// re-sorts the skyline by L1 norm, restoring short scan prefixes.
package stream

import (
	"slices"

	"skybench/internal/point"
)

// ownerSkyline and ownerFree are the sentinel owner values for slots
// that are in the skyline or not allocated; any other owner value is the
// slot of the bucket-owning skyline point.
const (
	ownerSkyline int32 = -1
	ownerFree    int32 = -2
)

// rebuildMinEngine is the live size below which escalation uses the
// built-in L1 re-insertion instead of the external hook: firing up a
// full parallel engine for a few hundred points costs more than the
// sequential scan it replaces.
const rebuildMinEngine = 256

// Options configures an Index.
type Options struct {
	// RebuildFraction triggers a full rebuild when the dirty counter
	// (accumulated re-resolution and demotion work) would exceed this
	// fraction of the live point count. Zero selects the default (0.5);
	// math.Inf(1) disables escalation entirely.
	RebuildFraction float64
	// Rebuild, when non-nil, computes the skyline of the n staged
	// d-dimensional row-major points in vals, returning row indices into
	// vals. It is invoked on escalation for live sets of at least
	// rebuildMinEngine points; the result may alias storage the hook
	// reuses, as the Index consumes it before returning. A nil return
	// falls back to the built-in sequential rebuild.
	Rebuild func(vals []float64, n int) []int
	// OnEnter and OnLeave, when non-nil, observe skyline membership
	// changes: OnEnter(slot) fires when a live slot enters the skyline,
	// OnLeave(slot) when it leaves (by demotion or deletion; for a
	// deletion the slot's values remain readable for the duration of the
	// callback). A rebuild emits the net membership change it caused —
	// none for an explicit Rebuild (recomputing an exact skyline finds
	// the same set), the resurrected orphans for a delete that escalated
	// past per-point re-resolution.
	OnEnter func(slot int32)
	// OnLeave is OnEnter's counterpart; see OnEnter.
	OnLeave func(slot int32)
}

// Stats are the Index's lifetime counters.
type Stats struct {
	// DominanceTests counts full point-vs-point dominance tests — the
	// same machine-independent metric the one-shot algorithms report.
	DominanceTests uint64
	// Resurrections counts points that re-entered the skyline when their
	// bucket owner was deleted.
	Resurrections uint64
	// Rebuilds counts full-recompute escalations.
	Rebuilds uint64
}

// Index is the mutable skyline maintenance structure. It is not
// goroutine-safe; the public wrapper serializes access.
type Index struct {
	d   int
	opt Options

	// Slot-indexed state. A slot is the point's permanent home in the
	// arena until it is deleted and the slot recycled. vals holds the
	// staged coordinates (d per slot), l1 their L1 norms; owner/pos say
	// where the point currently lives (skyline position or bucket+index)
	// and buckets[s] lists the points filed under skyline point s.
	vals    []float64
	l1      []float64
	owner   []int32
	pos     []int32
	buckets [][]int32
	free    []int32
	live    int

	// Dense skyline mirror: row k of skyVals is the staged point of slot
	// skySlots[k], with skyL1 its norm. Keeping the skyline contiguous is
	// what lets the probe scans run the flat kernels at full speed.
	skySlots []int32
	skyVals  []float64
	skyL1    []float64

	dirty     int
	rebuildMu bool // guards against emitting events inside a rebuild

	stats Stats

	// Reusable scratch: demoted skyline positions during an insert,
	// detached bucket members during a delete, and the dense gather and
	// pre-rebuild membership used by rebuilds.
	demoted   []int
	detached  []int32
	gatherIdx []int32
	gatherVal []float64
	wasSky    []bool
}

// New creates an empty index over staged d-dimensional points.
func New(d int, opt Options) *Index {
	if d < 1 {
		panic("stream: dimensionality must be at least 1")
	}
	if opt.RebuildFraction == 0 {
		opt.RebuildFraction = 0.5
	}
	return &Index{d: d, opt: opt}
}

// D returns the staged dimensionality.
func (ix *Index) D() int { return ix.d }

// Len returns the number of live points.
func (ix *Index) Len() int { return ix.live }

// SkylineSize returns the current skyline cardinality.
func (ix *Index) SkylineSize() int { return len(ix.skySlots) }

// Stats returns the lifetime counters.
func (ix *Index) Stats() Stats { return ix.stats }

// Skyline returns the slots currently in the skyline. The slice aliases
// internal storage and is valid only until the next mutation; its order
// is unspecified.
func (ix *Index) Skyline() []int32 { return ix.skySlots }

// Row returns the staged values of a live slot (aliasing the arena).
func (ix *Index) Row(slot int32) []float64 {
	return ix.vals[int(slot)*ix.d : (int(slot)+1)*ix.d : (int(slot)+1)*ix.d]
}

// InSkyline reports whether a live slot is currently a skyline point.
func (ix *Index) InSkyline(slot int32) bool { return ix.owner[slot] == ownerSkyline }

// Alloc copies the staged point p into a fresh slot and returns it. The
// point is live but not yet placed: callers must follow with Place
// (split so the public wrapper can record per-slot metadata before
// membership callbacks fire).
func (ix *Index) Alloc(p []float64) int32 {
	if len(p) != ix.d {
		panic("stream: point dimensionality mismatch")
	}
	var slot int32
	if n := len(ix.free); n > 0 {
		slot = ix.free[n-1]
		ix.free = ix.free[:n-1]
		copy(ix.vals[int(slot)*ix.d:], p)
	} else {
		slot = int32(len(ix.owner))
		ix.vals = append(ix.vals, p...)
		ix.l1 = append(ix.l1, 0)
		ix.owner = append(ix.owner, ownerFree)
		ix.pos = append(ix.pos, 0)
		ix.buckets = append(ix.buckets, nil)
	}
	ix.l1[slot] = point.L1(p)
	ix.live++
	return slot
}

// Place classifies an allocated slot against the current skyline and
// reports whether it entered it.
func (ix *Index) Place(slot int32) bool {
	return ix.classify(slot)
}

// Insert is Alloc followed by Place.
func (ix *Index) Insert(p []float64) (slot int32, entered bool) {
	slot = ix.Alloc(p)
	return slot, ix.Place(slot)
}

// classify files slot into the structure: bucketed under the first
// skyline dominator the scan finds, or entered into the skyline with any
// newly-dominated skyline points (and their buckets) demoted into its
// bucket. Fires membership events outside rebuilds.
func (ix *Index) classify(slot int32) bool {
	d := ix.d
	q := ix.Row(slot)
	qL1 := ix.l1[slot]
	ns := len(ix.skySlots)

	if j := point.FirstDominatorInFlatRun(ix.skyVals, d, 0, ns, q, qL1, ix.skyL1, &ix.stats.DominanceTests); j >= 0 {
		ix.addToBucket(ix.skySlots[j], slot)
		return false
	}

	// Not dominated: q enters. Collect the skyline rows q dominates (a
	// dominated row needs a strictly larger L1 norm, so most rows are
	// pruned by one comparison).
	ix.demoted = ix.demoted[:0]
	for k := 0; k < ns; k++ {
		if ix.skyL1[k] <= qL1 {
			continue
		}
		ix.stats.DominanceTests++
		if point.DominatesFlat2(ix.vals, int(slot)*d, ix.skyVals, k*d, d) {
			ix.demoted = append(ix.demoted, k)
		}
	}
	// Demote in descending skyline position so the swap-removes never
	// disturb a position still waiting to be processed.
	for i := len(ix.demoted) - 1; i >= 0; i-- {
		ix.demote(ix.demoted[i], slot)
	}
	ix.appendSkyline(slot)
	ix.emitEnter(slot)
	return true
}

// demote moves the skyline point at dense position k into newOwner's
// bucket, along with its entire bucket (newOwner dominates the demoted
// point, hence transitively everything the demoted point dominated).
func (ix *Index) demote(k int, newOwner int32) {
	s := ix.skySlots[k]
	ix.emitLeave(s)
	ix.removeSkyline(k)
	ix.addToBucket(newOwner, s)
	members := ix.buckets[s]
	for _, m := range members {
		ix.addToBucket(newOwner, m)
	}
	ix.buckets[s] = members[:0]
	ix.dirty += len(members)
}

// Delete removes a live slot from the index, re-resolving (or escalating
// past) its exclusive-dominance bucket when the slot was a skyline
// point. It reports whether the slot was live.
func (ix *Index) Delete(slot int32) bool {
	if int(slot) >= len(ix.owner) || ix.owner[slot] == ownerFree {
		return false
	}
	if o := ix.owner[slot]; o != ownerSkyline {
		// Bucketed point: unlink and free, no skyline impact.
		ix.removeFromBucket(o, slot)
		ix.freeSlot(slot)
		ix.dirty++
		ix.maybeRebuild(0)
		return true
	}

	members := ix.buckets[slot]
	if ix.shouldRebuild(len(members) + 1) {
		// The bucket is too large to re-resolve point-by-point (or dirt
		// has accrued): drop the point and recompute wholesale. The
		// orphaned members are still live and get re-owned by the
		// rebuild.
		ix.emitLeave(slot)
		ix.removeSkyline(int(ix.pos[slot]))
		ix.buckets[slot] = members[:0]
		ix.freeSlot(slot)
		ix.rebuild()
		return true
	}

	ix.emitLeave(slot)
	ix.removeSkyline(int(ix.pos[slot]))
	// Detach the bucket before re-classifying: classify appends to other
	// buckets, never to a freed slot's.
	ix.detached = append(ix.detached[:0], members...)
	ix.buckets[slot] = members[:0]
	ix.freeSlot(slot)

	// Re-resolve members in ascending L1 order: a member dominated by a
	// fellow member has the strictly larger norm, so dominators are
	// placed first and the dominated are bucketed directly instead of
	// transiting through the skyline.
	slices.SortFunc(ix.detached, func(a, b int32) int {
		switch la, lb := ix.l1[a], ix.l1[b]; {
		case la < lb:
			return -1
		case la > lb:
			return 1
		}
		return 0
	})
	for _, m := range ix.detached {
		if ix.classify(m) {
			ix.stats.Resurrections++
		}
	}
	ix.dirty += len(ix.detached) + 1
	ix.maybeRebuild(0)
	return true
}

// shouldRebuild reports whether pending units of re-resolution work, on
// top of the accrued dirt, cross the escalation threshold.
func (ix *Index) shouldRebuild(pending int) bool {
	return float64(ix.dirty+pending) > ix.opt.RebuildFraction*float64(ix.live)
}

// maybeRebuild escalates when the accrued dirt alone crosses the
// threshold (checked after cheap deletes so pure-delete workloads also
// converge back to a balanced structure).
func (ix *Index) maybeRebuild(pending int) {
	if ix.live > 0 && ix.shouldRebuild(pending) {
		ix.rebuild()
	}
}

// Rebuild forces a full recompute and rebucketing, as escalation does.
func (ix *Index) Rebuild() { ix.rebuild() }

// rebuild recomputes the skyline of the live set from scratch — through
// the external hook when one is configured and the set is large enough,
// otherwise by re-inserting every live point in ascending L1 order — and
// rebuilds every bucket. Events fire only for the net membership change,
// computed by diffing against the pre-rebuild state (empty for a clean
// rebuild; the resurrected orphans for an escalated delete).
func (ix *Index) rebuild() {
	ix.stats.Rebuilds++
	ix.dirty = 0
	d := ix.d

	// Record the pre-rebuild membership so the net change can be
	// emitted, and gather the live set densely, sorted by L1 ascending:
	// the skyline prefix-scan property below depends on the order, and
	// it leaves the rebuilt skyline matrix sorted so future insert scans
	// meet likely dominators first.
	if cap(ix.wasSky) < len(ix.owner) {
		ix.wasSky = make([]bool, len(ix.owner))
	}
	ix.wasSky = ix.wasSky[:len(ix.owner)]
	ix.gatherIdx = ix.gatherIdx[:0]
	for s := range ix.owner {
		ix.wasSky[s] = ix.owner[s] == ownerSkyline
		if ix.owner[s] != ownerFree {
			ix.gatherIdx = append(ix.gatherIdx, int32(s))
		}
	}
	slices.SortFunc(ix.gatherIdx, func(a, b int32) int {
		switch la, lb := ix.l1[a], ix.l1[b]; {
		case la < lb:
			return -1
		case la > lb:
			return 1
		}
		return 0
	})

	// Reset placement. Buckets are emptied in place so their capacity
	// survives for the refill.
	ix.skySlots = ix.skySlots[:0]
	ix.skyVals = ix.skyVals[:0]
	ix.skyL1 = ix.skyL1[:0]
	for _, s := range ix.gatherIdx {
		ix.buckets[s] = ix.buckets[s][:0]
	}

	n := len(ix.gatherIdx)
	var sky []int
	if ix.opt.Rebuild != nil && n >= rebuildMinEngine {
		if cap(ix.gatherVal) < n*d {
			ix.gatherVal = make([]float64, n*d)
		}
		ix.gatherVal = ix.gatherVal[:n*d]
		for i, s := range ix.gatherIdx {
			copy(ix.gatherVal[i*d:(i+1)*d], ix.Row(s))
		}
		sky = ix.opt.Rebuild(ix.gatherVal, n)
	}

	ix.rebuildMu = true
	if sky == nil {
		// Built-in sequential path: classify in ascending L1 order. No
		// point can dominate an earlier one, so nothing is ever demoted —
		// each point either joins the skyline for good or is bucketed
		// under its first dominator.
		for _, s := range ix.gatherIdx {
			ix.classify(s)
		}
	} else {
		// Hook path: mark membership, append the skyline rows (already
		// in ascending L1 order thanks to the sorted gather), then
		// assign every dominated point to the first dominator in the
		// sorted skyline prefix with a strictly smaller norm.
		inSky := make([]bool, n)
		for _, i := range sky {
			inSky[i] = true
		}
		for i, s := range ix.gatherIdx {
			if inSky[i] {
				ix.appendSkyline(s)
			}
		}
		for i, s := range ix.gatherIdx {
			if inSky[i] {
				continue
			}
			qL1 := ix.l1[s]
			hi, _ := slices.BinarySearch(ix.skyL1, qL1)
			j := point.FirstDominatorInFlatRun(ix.skyVals, d, 0, hi, ix.Row(s), qL1, nil, &ix.stats.DominanceTests)
			if j < 0 {
				// The hook disagreed with the maintained skyline (it
				// should not); fall back to a full classify so the
				// structure stays correct regardless.
				ix.classify(s)
				continue
			}
			ix.addToBucket(ix.skySlots[j], s)
		}
	}
	ix.rebuildMu = false

	// Emit the net membership change. Net entries are resurrections that
	// took the escalated path instead of per-point re-resolution; count
	// them the same so the stat is path-independent.
	for _, s := range ix.gatherIdx {
		now := ix.owner[s] == ownerSkyline
		if now != ix.wasSky[s] {
			if now {
				ix.stats.Resurrections++
				ix.emitEnter(s)
			} else {
				ix.emitLeave(s)
			}
		}
	}
}

// RebuildFraction returns the effective escalation threshold.
func (ix *Index) RebuildFraction() float64 { return ix.opt.RebuildFraction }

// Validate checks the structural invariants (every live point either in
// the skyline or bucketed under a dominating skyline point, dense mirror
// consistent) and panics on violation. Test support; O(n·d).
func (ix *Index) Validate() {
	live := 0
	for s := range ix.owner {
		slot := int32(s)
		switch o := ix.owner[s]; {
		case o == ownerFree:
			continue
		case o == ownerSkyline:
			live++
			k := int(ix.pos[slot])
			if k >= len(ix.skySlots) || ix.skySlots[k] != slot {
				panic("stream: skyline position out of sync")
			}
			if !slices.Equal(ix.skyVals[k*ix.d:(k+1)*ix.d], ix.Row(slot)) {
				panic("stream: skyline mirror out of sync")
			}
		default:
			live++
			if ix.owner[o] != ownerSkyline {
				panic("stream: bucket owner not in skyline")
			}
			b := ix.buckets[o]
			p := int(ix.pos[slot])
			if p >= len(b) || b[p] != slot {
				panic("stream: bucket position out of sync")
			}
			if !point.DominatesFlat(ix.vals, int(o)*ix.d, int(slot)*ix.d, ix.d) {
				panic("stream: bucket owner does not dominate member")
			}
		}
	}
	if live != ix.live {
		panic("stream: live count out of sync")
	}
}

func (ix *Index) emitEnter(slot int32) {
	if ix.opt.OnEnter != nil && !ix.rebuildMu {
		ix.opt.OnEnter(slot)
	}
}

func (ix *Index) emitLeave(slot int32) {
	if ix.opt.OnLeave != nil && !ix.rebuildMu {
		ix.opt.OnLeave(slot)
	}
}

func (ix *Index) addToBucket(owner, slot int32) {
	ix.owner[slot] = owner
	ix.pos[slot] = int32(len(ix.buckets[owner]))
	ix.buckets[owner] = append(ix.buckets[owner], slot)
}

func (ix *Index) removeFromBucket(owner, slot int32) {
	b := ix.buckets[owner]
	p := ix.pos[slot]
	last := len(b) - 1
	moved := b[last]
	b[p] = moved
	ix.pos[moved] = p
	ix.buckets[owner] = b[:last]
}

func (ix *Index) appendSkyline(slot int32) {
	ix.owner[slot] = ownerSkyline
	ix.pos[slot] = int32(len(ix.skySlots))
	ix.skySlots = append(ix.skySlots, slot)
	ix.skyVals = append(ix.skyVals, ix.Row(slot)...)
	ix.skyL1 = append(ix.skyL1, ix.l1[slot])
}

// removeSkyline swap-removes dense skyline position k.
func (ix *Index) removeSkyline(k int) {
	d := ix.d
	last := len(ix.skySlots) - 1
	if k != last {
		moved := ix.skySlots[last]
		ix.skySlots[k] = moved
		copy(ix.skyVals[k*d:(k+1)*d], ix.skyVals[last*d:(last+1)*d])
		ix.skyL1[k] = ix.skyL1[last]
		ix.pos[moved] = int32(k)
	}
	ix.skySlots = ix.skySlots[:last]
	ix.skyVals = ix.skyVals[:last*d]
	ix.skyL1 = ix.skyL1[:last]
}

func (ix *Index) freeSlot(slot int32) {
	ix.owner[slot] = ownerFree
	ix.free = append(ix.free, slot)
	ix.live--
}
