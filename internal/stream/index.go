// Package stream implements the incremental skyline and k-skyband
// maintenance core behind the public skybench/stream package: a mutable
// index over staged (all-minimized) points that keeps the exact band
// current under inserts and deletes without recomputing it from scratch.
//
// The design generalizes one invariant of the dominance relation. For
// the skyline (k = 1), every non-skyline point is filed in the
// exclusive-dominance "bucket" of one skyline point that dominates it.
// For the k-skyband — the points dominated by fewer than k others —
// every out-of-band point has at least k dominators inside the band
// (every dominator of a band point is itself a band point, by
// transitivity), so it is registered in the buckets of exactly k
// distinct band dominators, and the band members carry their exact
// dominator counts. The registration invariant is what makes deletion
// local: a point needs re-examination only when one of its k registered
// owners disappears — losing an unregistered dominator still leaves k
// registered ones, so membership cannot have changed.
//
// An insert probes the dense band matrix with the flat kernels of
// internal/point — a probe with k dominators is registered under the
// first k the scan finds; otherwise it enters the band with its exact
// count and increments the count of every band member it dominates,
// demoting those that reach k (their buckets transfer to the new point,
// which transitively dominates everything they did). Deleting a
// registered point is O(k); deleting a band member decrements the count
// of every band member it dominated, then re-resolves only its own
// bucket: each orphan either finds a replacement dominator not already
// registered, or — having exactly k−1 band dominators left — is
// promoted into the band with that exact count.
//
// Re-resolution work is accrued in a dirty counter; when it exceeds a
// configurable fraction of the live set, the index escalates to a full
// recompute (through a pluggable hook — the public package supplies an
// Engine-backed k-skyband query) that also rebalances every bucket and
// re-sorts the band by L1 norm, restoring short scan prefixes.
package stream

import (
	"slices"

	"skybench/internal/point"
)

// ownerSkyline, ownerBucketed and ownerFree are the slot status values:
// in the band, registered under band dominators, or not allocated.
const (
	ownerSkyline  int32 = -1
	ownerFree     int32 = -2
	ownerBucketed int32 = -3
)

// rebuildMinEngine is the live size below which escalation uses the
// built-in L1 re-insertion instead of the external hook: firing up a
// full parallel engine for a few hundred points costs more than the
// sequential scan it replaces.
const rebuildMinEngine = 256

// Options configures an Index.
type Options struct {
	// K is the band parameter: the index maintains the set of points
	// dominated by fewer than K others. 0 and 1 both select the plain
	// skyline. Fixed for the life of the index.
	K int
	// RebuildFraction triggers a full rebuild when the dirty counter
	// (accumulated re-resolution and demotion work) would exceed this
	// fraction of the live point count. Zero selects the default (0.5);
	// math.Inf(1) disables escalation entirely.
	RebuildFraction float64
	// Rebuild, when non-nil, computes the K-skyband of the n staged
	// d-dimensional row-major points in vals, returning row indices into
	// vals plus each member's exact dominator count (counts may be nil
	// when K = 1, where every skyline point has zero dominators). It is
	// invoked on escalation for live sets of at least rebuildMinEngine
	// points; the results may alias storage the hook reuses, as the
	// Index consumes them before returning. A nil index slice falls back
	// to the built-in sequential rebuild.
	Rebuild func(vals []float64, n int) ([]int, []int32)
	// OnEnter and OnLeave, when non-nil, observe band membership
	// changes: OnEnter(slot) fires when a live slot enters the band,
	// OnLeave(slot) when it leaves (by demotion or deletion; for a
	// deletion the slot's values remain readable for the duration of the
	// callback). A rebuild emits the net membership change it caused —
	// none for an explicit Rebuild (recomputing an exact band finds the
	// same set), the resurrected orphans for a delete that escalated
	// past per-point re-resolution.
	OnEnter func(slot int32)
	// OnLeave is OnEnter's counterpart; see OnEnter.
	OnLeave func(slot int32)
}

// Stats are the Index's lifetime counters.
type Stats struct {
	// DominanceTests counts full point-vs-point dominance tests — the
	// same machine-independent metric the one-shot algorithms report.
	DominanceTests uint64
	// Resurrections counts points that re-entered the band when one of
	// their registered owners was deleted.
	Resurrections uint64
	// Rebuilds counts full-recompute escalations.
	Rebuilds uint64
}

// Index is the mutable band maintenance structure. It is not
// goroutine-safe; the public wrapper serializes access.
type Index struct {
	d   int
	k   int
	opt Options

	// Slot-indexed state. A slot is the point's permanent home in the
	// arena until it is deleted and the slot recycled. vals holds the
	// staged coordinates (d per slot), l1 their L1 norms; owner is the
	// slot's status, cnt its exact dominator count while it is a band
	// member, pos its position in the dense band mirror. A bucketed
	// slot's k registrations live in regO/regP (owner slot and position
	// within that owner's bucket, k entries per slot); buckets[s] lists
	// the points registered under band point s.
	vals    []float64
	l1      []float64
	owner   []int32
	pos     []int32
	cnt     []int32
	regO    []int32
	regP    []int32
	buckets [][]int32
	free    []int32
	live    int

	// Dense band mirror: row p of skyVals is the staged point of slot
	// skySlots[p], with skyL1 its norm. Keeping the band contiguous is
	// what lets the probe scans run the flat kernels at full speed.
	skySlots []int32
	skyVals  []float64
	skyL1    []float64

	dirty     int
	rebuildMu bool // guards against emitting events inside a rebuild

	stats Stats

	// Reusable scratch: demoted band positions and slots during an
	// insert, detached bucket members during a delete, collected
	// dominator positions during classification, and the dense gather
	// and pre-rebuild membership used by rebuilds.
	demoted   []int
	demotedS  []int32
	detached  []int32
	doms      []int32
	gatherIdx []int32
	gatherVal []float64
	wasSky    []bool
}

// New creates an empty index over staged d-dimensional points.
func New(d int, opt Options) *Index {
	if d < 1 {
		panic("stream: dimensionality must be at least 1")
	}
	if opt.RebuildFraction == 0 {
		opt.RebuildFraction = 0.5
	}
	k := opt.K
	if k < 1 {
		k = 1
	}
	return &Index{d: d, k: k, opt: opt}
}

// D returns the staged dimensionality.
func (ix *Index) D() int { return ix.d }

// K returns the band parameter (1 = skyline).
func (ix *Index) K() int { return ix.k }

// Len returns the number of live points.
func (ix *Index) Len() int { return ix.live }

// SkylineSize returns the current band cardinality.
func (ix *Index) SkylineSize() int { return len(ix.skySlots) }

// Stats returns the lifetime counters.
func (ix *Index) Stats() Stats { return ix.stats }

// Skyline returns the slots currently in the band. The slice aliases
// internal storage and is valid only until the next mutation; its order
// is unspecified.
func (ix *Index) Skyline() []int32 { return ix.skySlots }

// AppendLiveSlots appends every live slot (band member or bucketed) to
// dst in ascending slot order — the deterministic enumeration behind
// live-set materialization — and returns the extended slice.
func (ix *Index) AppendLiveSlots(dst []int32) []int32 {
	for slot, owner := range ix.owner {
		if owner != ownerFree {
			dst = append(dst, int32(slot))
		}
	}
	return dst
}

// Row returns the staged values of a live slot (aliasing the arena).
func (ix *Index) Row(slot int32) []float64 {
	return ix.vals[int(slot)*ix.d : (int(slot)+1)*ix.d : (int(slot)+1)*ix.d]
}

// InSkyline reports whether a live slot is currently a band member.
func (ix *Index) InSkyline(slot int32) bool { return ix.owner[slot] == ownerSkyline }

// DominatorCount returns the exact dominator count of a band member
// (always < K). For non-members the count is not maintained and the
// return value is unspecified.
func (ix *Index) DominatorCount(slot int32) int32 { return ix.cnt[slot] }

// Alloc copies the staged point p into a fresh slot and returns it. The
// point is live but not yet placed: callers must follow with Place
// (split so the public wrapper can record per-slot metadata before
// membership callbacks fire).
func (ix *Index) Alloc(p []float64) int32 {
	if len(p) != ix.d {
		panic("stream: point dimensionality mismatch")
	}
	var slot int32
	if n := len(ix.free); n > 0 {
		slot = ix.free[n-1]
		ix.free = ix.free[:n-1]
		copy(ix.vals[int(slot)*ix.d:], p)
	} else {
		slot = int32(len(ix.owner))
		ix.vals = append(ix.vals, p...)
		ix.l1 = append(ix.l1, 0)
		ix.owner = append(ix.owner, ownerFree)
		ix.pos = append(ix.pos, 0)
		ix.cnt = append(ix.cnt, 0)
		for j := 0; j < ix.k; j++ {
			ix.regO = append(ix.regO, ownerFree)
			ix.regP = append(ix.regP, 0)
		}
		ix.buckets = append(ix.buckets, nil)
	}
	ix.l1[slot] = point.L1(p)
	ix.live++
	return slot
}

// Place classifies an allocated slot against the current band and
// reports whether it entered it.
func (ix *Index) Place(slot int32) bool {
	return ix.classify(slot)
}

// Insert is Alloc followed by Place.
func (ix *Index) Insert(p []float64) (slot int32, entered bool) {
	slot = ix.Alloc(p)
	return slot, ix.Place(slot)
}

// classify files slot into the structure: registered under the first k
// band dominators the scan finds, or entered into the band with its
// exact dominator count, demoting any band members whose count its
// arrival pushes to k. Fires membership events outside rebuilds.
func (ix *Index) classify(slot int32) bool {
	d := ix.d
	k := ix.k
	q := ix.Row(slot)
	qL1 := ix.l1[slot]
	ns := len(ix.skySlots)

	if k == 1 {
		// Skyline fast path: the unrolled first-dominator kernel.
		if j := point.FirstDominatorInFlatRun(ix.skyVals, d, 0, ns, q, qL1, ix.skyL1, &ix.stats.DominanceTests); j >= 0 {
			ix.registerOne(slot, ix.skySlots[j])
			return false
		}
		ix.cnt[slot] = 0
	} else {
		ix.doms = point.AppendDominatorsInFlatRun(ix.doms[:0], ix.skyVals, d, 0, ns, q, qL1, ix.skyL1, k, &ix.stats.DominanceTests)
		if len(ix.doms) >= k {
			ix.registerAll(slot, ix.doms)
			return false
		}
		ix.cnt[slot] = int32(len(ix.doms))
	}

	// Fewer than k band dominators: q enters the band. Its arrival adds
	// one dominator to every band member it dominates (a dominated row
	// needs a strictly larger L1 norm, so most rows are pruned by one
	// comparison); members reaching k dominators are demoted.
	ix.demoted = ix.demoted[:0]
	for p := 0; p < ns; p++ {
		if ix.skyL1[p] <= qL1 {
			continue
		}
		ix.stats.DominanceTests++
		if point.DominatesFlat2(ix.vals, int(slot)*d, ix.skyVals, p*d, d) {
			s := ix.skySlots[p]
			ix.cnt[s]++
			if int(ix.cnt[s]) >= k {
				ix.demoted = append(ix.demoted, p)
			}
		}
	}
	// Demotion phase 1, in descending band position so the swap-removes
	// never disturb a position still waiting to be processed: take every
	// demotee out of the band, then make q scannable.
	ix.demotedS = ix.demotedS[:0]
	for i := len(ix.demoted) - 1; i >= 0; i-- {
		p := ix.demoted[i]
		s := ix.skySlots[p]
		ix.emitLeave(s)
		ix.removeSkyline(p)
		ix.demotedS = append(ix.demotedS, s)
	}
	ix.appendSkyline(slot)
	ix.emitEnter(slot)
	// Demotion phase 2: every registration entry pointing at a demotee
	// is repointed — to q when q is not already registered on that
	// member (q dominates the demotee, hence transitively the member),
	// otherwise to a fresh band dominator found by scan; one always
	// exists, because an out-of-band point has ≥ k band dominators and
	// demotees never match band entries. Buckets hand over wholesale.
	for _, s := range ix.demotedS {
		members := ix.buckets[s]
		for _, m := range members {
			ix.repointReg(m, s, slot)
		}
		ix.buckets[s] = members[:0]
		ix.dirty += len(members)
	}
	// Demotion phase 3: register the demotees themselves. Demotees form
	// an antichain (if one dominated another the second would have
	// reached k+1 dominators while still a band member, impossible), so
	// their pre-demotion dominators all remain in the band and each
	// registration scan finds exactly k.
	for _, s := range ix.demotedS {
		ix.registerDemoted(s, slot)
	}
	return true
}

// registerDemoted registers a just-demoted slot, whose dominator count
// reached exactly k: under newOwner alone when k = 1, else under the k
// band dominators a fresh scan collects (newOwner among them).
func (ix *Index) registerDemoted(s, newOwner int32) {
	if ix.k == 1 {
		ix.registerOne(s, newOwner)
		return
	}
	q := ix.Row(s)
	qL1 := ix.l1[s]
	ix.doms = point.AppendDominatorsInFlatRun(ix.doms[:0], ix.skyVals, ix.d, 0, len(ix.skySlots), q, qL1, ix.skyL1, ix.k, &ix.stats.DominanceTests)
	if len(ix.doms) < ix.k {
		// The L1 prefilter can hide a dominator whose computed norm tied
		// the probe's by float absorption; rescan without it. The counts
		// themselves are maintained by exact dominance tests, so the
		// unfiltered scan always finds the k dominators the count names.
		ix.doms = point.AppendDominatorsInFlatRun(ix.doms[:0], ix.skyVals, ix.d, 0, len(ix.skySlots), q, qL1, nil, ix.k, &ix.stats.DominanceTests)
		if len(ix.doms) < ix.k {
			panic("stream: demoted point has fewer dominators than its maintained count")
		}
	}
	ix.registerAll(s, ix.doms)
}

// Delete removes a live slot from the index, re-resolving (or escalating
// past) its bucket when the slot was a band member. It reports whether
// the slot was live.
func (ix *Index) Delete(slot int32) bool {
	if int(slot) >= len(ix.owner) || ix.owner[slot] == ownerFree {
		return false
	}
	k := ix.k
	if ix.owner[slot] != ownerSkyline {
		// Registered point: unlink from its k owners and free — no band
		// impact, because losing a non-band point can only lower the
		// counts of other non-band points.
		ix.unregisterAll(slot)
		ix.freeSlot(slot)
		ix.dirty++
		ix.maybeRebuild(0)
		return true
	}

	members := ix.buckets[slot]
	if ix.shouldRebuild(len(members) + 1) {
		// The bucket is too large to re-resolve point-by-point (or dirt
		// has accrued): drop the point and recompute wholesale. The
		// orphaned members are still live; the rebuild re-places every
		// live point, overwriting stale registrations.
		ix.emitLeave(slot)
		ix.removeSkyline(int(ix.pos[slot]))
		ix.buckets[slot] = members[:0]
		ix.freeSlot(slot)
		ix.rebuild()
		return true
	}

	ix.emitLeave(slot)
	ix.removeSkyline(int(ix.pos[slot]))

	// Every band member the deleted point dominated loses one dominator.
	// They all stay in the band (counts only drop), and no point outside
	// the deleted point's bucket can be promoted by this delete: its k
	// registered owners are all still band members, so its band
	// dominator count is still ≥ k.
	if k > 1 {
		d := ix.d
		sL1 := ix.l1[slot]
		for p := 0; p < len(ix.skySlots); p++ {
			if ix.skyL1[p] <= sL1 {
				continue
			}
			ix.stats.DominanceTests++
			if point.DominatesFlat2(ix.vals, int(slot)*d, ix.skyVals, p*d, d) {
				ix.cnt[ix.skySlots[p]]--
			}
		}
	}

	// Detach the bucket before re-resolving: resolution appends to other
	// buckets, never to a freed slot's.
	ix.detached = append(ix.detached[:0], members...)
	ix.buckets[slot] = members[:0]
	ix.freeSlot(slot)

	// Re-resolve orphans in ascending L1 order: an orphan promoted into
	// the band is then visible to the scans of later orphans (which have
	// the larger norms and may be dominated by it), keeping every
	// count and registration exact.
	slices.SortFunc(ix.detached, func(a, b int32) int {
		switch la, lb := ix.l1[a], ix.l1[b]; {
		case la < lb:
			return -1
		case la > lb:
			return 1
		}
		return 0
	})
	for _, m := range ix.detached {
		ix.resolveOrphan(m, slot)
	}
	ix.dirty += len(ix.detached) + 1
	ix.maybeRebuild(0)
	return true
}

// resolveOrphan re-places bucket member m after its registered owner
// gone was deleted. For k = 1 this is a full reclassification (the old
// exclusive-bucket rule). For k > 1 the registration invariant makes it
// local: m lost one of its k registered band dominators, so it stays
// out of band iff some unregistered band dominator can take the slot;
// if none exists, m has exactly k−1 band dominators and is promoted
// with that exact count.
func (ix *Index) resolveOrphan(m, gone int32) {
	k := ix.k
	if k == 1 {
		if ix.classify(m) {
			ix.stats.Resurrections++
		}
		return
	}
	base := int(m) * k
	j := -1
	for i := 0; i < k; i++ {
		if ix.regO[base+i] == gone {
			j = i
			break
		}
	}
	if j < 0 {
		// Membership in gone's bucket implies a registration entry; reach
		// here only if the structure is corrupt.
		panic("stream: orphan not registered under deleted owner")
	}
	// Scan the band for a dominator of m not already registered (entry j
	// still holds the freed gone slot, which can never match a band
	// member, so the helper's full-list duplicate check is exact here —
	// and it retries unfiltered when float absorption hides a dominator
	// behind a tied L1 norm, so a point with a k-th band dominator is
	// never promoted by mistake).
	if s := ix.findUnregisteredDominator(m); s >= 0 {
		// Replacement found: m keeps k registered dominators and stays
		// out of band.
		ix.regO[base+j] = s
		ix.regP[base+j] = int32(len(ix.buckets[s]))
		ix.buckets[s] = append(ix.buckets[s], m)
		return
	}
	// No unregistered dominator exists: m's band dominators are exactly
	// its k−1 surviving registrations — promote with that exact count.
	for i := 0; i < k; i++ {
		if i != j {
			ix.removeRegEntry(m, i)
		}
	}
	ix.cnt[m] = int32(k - 1)
	ix.appendSkyline(m)
	ix.emitEnter(m)
	ix.stats.Resurrections++
}

// shouldRebuild reports whether pending units of re-resolution work, on
// top of the accrued dirt, cross the escalation threshold.
func (ix *Index) shouldRebuild(pending int) bool {
	return float64(ix.dirty+pending) > ix.opt.RebuildFraction*float64(ix.live)
}

// maybeRebuild escalates when the accrued dirt alone crosses the
// threshold (checked after cheap deletes so pure-delete workloads also
// converge back to a balanced structure).
func (ix *Index) maybeRebuild(pending int) {
	if ix.live > 0 && ix.shouldRebuild(pending) {
		ix.rebuild()
	}
}

// Rebuild forces a full recompute and rebucketing, as escalation does.
func (ix *Index) Rebuild() { ix.rebuild() }

// rebuild recomputes the band of the live set from scratch — through
// the external hook when one is configured and the set is large enough,
// otherwise by re-inserting every live point in ascending L1 order — and
// rebuilds every bucket and registration. Events fire only for the net
// membership change, computed by diffing against the pre-rebuild state
// (empty for a clean rebuild; the resurrected orphans for an escalated
// delete).
func (ix *Index) rebuild() {
	ix.stats.Rebuilds++
	ix.dirty = 0
	d := ix.d
	k := ix.k

	// Record the pre-rebuild membership so the net change can be
	// emitted, and gather the live set densely, sorted by L1 ascending:
	// the in-order classification below depends on the order (nothing
	// is ever demoted when dominators are always inserted first), and
	// it leaves the rebuilt band matrix sorted so future insert scans
	// meet likely dominators first.
	if cap(ix.wasSky) < len(ix.owner) {
		ix.wasSky = make([]bool, len(ix.owner))
	}
	ix.wasSky = ix.wasSky[:len(ix.owner)]
	ix.gatherIdx = ix.gatherIdx[:0]
	for s := range ix.owner {
		ix.wasSky[s] = ix.owner[s] == ownerSkyline
		if ix.owner[s] != ownerFree {
			ix.gatherIdx = append(ix.gatherIdx, int32(s))
		}
	}
	slices.SortFunc(ix.gatherIdx, func(a, b int32) int {
		switch la, lb := ix.l1[a], ix.l1[b]; {
		case la < lb:
			return -1
		case la > lb:
			return 1
		}
		return 0
	})

	// Reset placement. Buckets are emptied in place so their capacity
	// survives for the refill; registrations are overwritten when each
	// point is re-placed.
	ix.skySlots = ix.skySlots[:0]
	ix.skyVals = ix.skyVals[:0]
	ix.skyL1 = ix.skyL1[:0]
	for _, s := range ix.gatherIdx {
		ix.buckets[s] = ix.buckets[s][:0]
	}

	n := len(ix.gatherIdx)
	var sky []int
	var skyCnt []int32
	if ix.opt.Rebuild != nil && n >= rebuildMinEngine {
		if cap(ix.gatherVal) < n*d {
			ix.gatherVal = make([]float64, n*d)
		}
		ix.gatherVal = ix.gatherVal[:n*d]
		for i, s := range ix.gatherIdx {
			copy(ix.gatherVal[i*d:(i+1)*d], ix.Row(s))
		}
		sky, skyCnt = ix.opt.Rebuild(ix.gatherVal, n)
	}

	ix.rebuildMu = true
	if sky == nil {
		// Built-in sequential path: classify in ascending L1 order. No
		// point can dominate an earlier one, so nothing is ever demoted —
		// each point either joins the band for good, with its exact
		// dominator count, or is registered under its first k dominators.
		for _, s := range ix.gatherIdx {
			ix.classify(s)
		}
	} else {
		// Hook path: mark membership and counts, append the band rows
		// (already in ascending L1 order thanks to the sorted gather),
		// then register every out-of-band point under the first k
		// dominators in the sorted band prefix with strictly smaller
		// norms.
		inSky := make([]bool, n)
		for pos, i := range sky {
			inSky[i] = true
			if skyCnt != nil {
				ix.cnt[ix.gatherIdx[i]] = skyCnt[pos]
			} else {
				ix.cnt[ix.gatherIdx[i]] = 0
			}
		}
		for i, s := range ix.gatherIdx {
			if inSky[i] {
				ix.appendSkyline(s)
			}
		}
		for i, s := range ix.gatherIdx {
			if inSky[i] {
				continue
			}
			qL1 := ix.l1[s]
			hi, _ := slices.BinarySearch(ix.skyL1, qL1)
			if k == 1 {
				j := point.FirstDominatorInFlatRun(ix.skyVals, d, 0, hi, ix.Row(s), qL1, nil, &ix.stats.DominanceTests)
				if j < 0 {
					// The hook disagreed with the maintained band (it
					// should not); fall back to a full classify so the
					// structure stays correct regardless.
					ix.classify(s)
					continue
				}
				ix.registerOne(s, ix.skySlots[j])
				continue
			}
			ix.doms = point.AppendDominatorsInFlatRun(ix.doms[:0], ix.skyVals, d, 0, hi, ix.Row(s), qL1, nil, k, &ix.stats.DominanceTests)
			if len(ix.doms) < k {
				ix.classify(s) // hook disagreement; same fallback as k = 1
				continue
			}
			ix.registerAll(s, ix.doms)
		}
	}
	ix.rebuildMu = false

	// Emit the net membership change. Net entries are resurrections that
	// took the escalated path instead of per-point re-resolution; count
	// them the same so the stat is path-independent.
	for _, s := range ix.gatherIdx {
		now := ix.owner[s] == ownerSkyline
		if now != ix.wasSky[s] {
			if now {
				ix.stats.Resurrections++
				ix.emitEnter(s)
			} else {
				ix.emitLeave(s)
			}
		}
	}
}

// RebuildFraction returns the effective escalation threshold.
func (ix *Index) RebuildFraction() float64 { return ix.opt.RebuildFraction }

// Validate checks the structural invariants — every live point either a
// band member with a dominator count below k, or registered under k
// distinct dominating band members with consistent bucket positions,
// and the dense mirror in sync — and panics on violation. Test support;
// O(n·k·d).
func (ix *Index) Validate() {
	k := ix.k
	live := 0
	for s := range ix.owner {
		slot := int32(s)
		switch o := ix.owner[s]; {
		case o == ownerFree:
			continue
		case o == ownerSkyline:
			live++
			p := int(ix.pos[slot])
			if p >= len(ix.skySlots) || ix.skySlots[p] != slot {
				panic("stream: band position out of sync")
			}
			if !slices.Equal(ix.skyVals[p*ix.d:(p+1)*ix.d], ix.Row(slot)) {
				panic("stream: band mirror out of sync")
			}
			if int(ix.cnt[slot]) >= k {
				panic("stream: band member with count >= k")
			}
		case o == ownerBucketed:
			live++
			base := s * k
			for i := 0; i < k; i++ {
				ob := ix.regO[base+i]
				if ob < 0 || ix.owner[ob] != ownerSkyline {
					panic("stream: registered owner not in band")
				}
				for x := 0; x < i; x++ {
					if ix.regO[base+x] == ob {
						panic("stream: duplicate registered owner")
					}
				}
				b := ix.buckets[ob]
				p := int(ix.regP[base+i])
				if p >= len(b) || b[p] != slot {
					panic("stream: bucket position out of sync")
				}
				if !point.DominatesFlat(ix.vals, int(ob)*ix.d, s*ix.d, ix.d) {
					panic("stream: registered owner does not dominate member")
				}
			}
		default:
			panic("stream: invalid slot status")
		}
	}
	if live != ix.live {
		panic("stream: live count out of sync")
	}
}

func (ix *Index) emitEnter(slot int32) {
	if ix.opt.OnEnter != nil && !ix.rebuildMu {
		ix.opt.OnEnter(slot)
	}
}

func (ix *Index) emitLeave(slot int32) {
	if ix.opt.OnLeave != nil && !ix.rebuildMu {
		ix.opt.OnLeave(slot)
	}
}

// registerOne files slot under a single owner (the k = 1 bucket rule).
func (ix *Index) registerOne(slot, owner int32) {
	base := int(slot) * ix.k
	ix.regO[base] = owner
	ix.regP[base] = int32(len(ix.buckets[owner]))
	ix.buckets[owner] = append(ix.buckets[owner], slot)
	ix.owner[slot] = ownerBucketed
}

// registerAll files slot under the band members at the given dense band
// positions (distinct by construction: they come from one scan).
func (ix *Index) registerAll(slot int32, positions []int32) {
	k := ix.k
	base := int(slot) * k
	for i, p := range positions {
		o := ix.skySlots[p]
		ix.regO[base+i] = o
		ix.regP[base+i] = int32(len(ix.buckets[o]))
		ix.buckets[o] = append(ix.buckets[o], slot)
	}
	ix.owner[slot] = ownerBucketed
}

// repointReg repoints slot's registration entry for the demoted
// oldOwner: at newOwner when it is not yet registered on slot, else at
// a band dominator of slot found by scan. The caller discards
// oldOwner's bucket wholesale, so no removal happens here. Entries for
// other still-pending demotees may be stale during the scan; they never
// collide with it, because a scan result is a band member and a pending
// demotee is not.
func (ix *Index) repointReg(slot, oldOwner, newOwner int32) {
	k := ix.k
	base := int(slot) * k
	j := -1
	dup := false
	for i := 0; i < k; i++ {
		switch ix.regO[base+i] {
		case oldOwner:
			j = i
		case newOwner:
			dup = true
		}
	}
	if j < 0 {
		panic("stream: registration entry for demoted owner not found")
	}
	target := newOwner
	if dup {
		// An earlier demotee of this insert already repointed one of
		// slot's entries at newOwner; this entry needs a different
		// dominator.
		target = ix.findUnregisteredDominator(slot)
		if target < 0 {
			panic("stream: no replacement dominator for demoted registration")
		}
	}
	ix.regO[base+j] = target
	ix.regP[base+j] = int32(len(ix.buckets[target]))
	ix.buckets[target] = append(ix.buckets[target], slot)
}

// findUnregisteredDominator scans the band for a dominator of slot that
// is not currently among slot's registration entries, returning its
// slot or -1. The L1-prefiltered scan is retried unfiltered before
// giving up, for the same float-absorption reason as registerDemoted.
func (ix *Index) findUnregisteredDominator(slot int32) int32 {
	for _, filtered := range []bool{true, false} {
		d := ix.d
		k := ix.k
		base := int(slot) * k
		qOff := int(slot) * d
		qL1 := ix.l1[slot]
		for p := 0; p < len(ix.skySlots); p++ {
			if filtered && ix.skyL1[p] >= qL1 {
				continue
			}
			if !filtered && ix.skyL1[p] < qL1 {
				continue // pass 1 already tested this row
			}
			ix.stats.DominanceTests++
			if !point.DominatesFlat2(ix.skyVals, p*d, ix.vals, qOff, d) {
				continue
			}
			s := ix.skySlots[p]
			already := false
			for i := 0; i < k; i++ {
				if ix.regO[base+i] == s {
					already = true
					break
				}
			}
			if !already {
				return s
			}
		}
	}
	return -1
}

// removeRegEntry unlinks slot's i-th registration from its owner's
// bucket, fixing the swapped member's back-reference.
func (ix *Index) removeRegEntry(slot int32, i int) {
	k := ix.k
	base := int(slot)*k + i
	o := ix.regO[base]
	p := ix.regP[base]
	b := ix.buckets[o]
	last := len(b) - 1
	moved := b[last]
	b[p] = moved
	ix.buckets[o] = b[:last]
	if moved != slot {
		mb := int(moved) * k
		for x := 0; x < k; x++ {
			if ix.regO[mb+x] == o {
				ix.regP[mb+x] = p
				break
			}
		}
	}
}

// unregisterAll unlinks slot from every registered owner (owners are
// distinct, so the removals are independent).
func (ix *Index) unregisterAll(slot int32) {
	for i := 0; i < ix.k; i++ {
		ix.removeRegEntry(slot, i)
	}
}

func (ix *Index) appendSkyline(slot int32) {
	ix.owner[slot] = ownerSkyline
	ix.pos[slot] = int32(len(ix.skySlots))
	ix.skySlots = append(ix.skySlots, slot)
	ix.skyVals = append(ix.skyVals, ix.Row(slot)...)
	ix.skyL1 = append(ix.skyL1, ix.l1[slot])
}

// removeSkyline swap-removes dense band position p.
func (ix *Index) removeSkyline(p int) {
	d := ix.d
	last := len(ix.skySlots) - 1
	if p != last {
		moved := ix.skySlots[last]
		ix.skySlots[p] = moved
		copy(ix.skyVals[p*d:(p+1)*d], ix.skyVals[last*d:(last+1)*d])
		ix.skyL1[p] = ix.skyL1[last]
		ix.pos[moved] = int32(p)
	}
	ix.skySlots = ix.skySlots[:last]
	ix.skyVals = ix.skyVals[:last*d]
	ix.skyL1 = ix.skyL1[:last]
}

func (ix *Index) freeSlot(slot int32) {
	ix.owner[slot] = ownerFree
	ix.free = append(ix.free, slot)
	ix.live--
}
