// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section VII) under testing.B. Each sub-benchmark is one
// cell of the corresponding figure's series, named so that `go test
// -bench` output can be read as the figure's rows. Workloads are scaled
// down from the paper's (see DESIGN.md §5); cmd/experiments runs the
// same sweeps at configurable scale with richer tables.
package skybench_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"skybench"

	"skybench/internal/dataset"
	"skybench/internal/point"
)

// Benchmark scales: small enough that the full suite completes on a
// laptop, large enough that algorithmic differences dominate overheads.
const (
	benchN = 4000
	benchD = 8
)

var benchDims = []int{4, 8, 12}
var benchNs = []int{1000, 4000, 16000}
var benchThreads = []int{1, 2, 4}

// dataCache avoids regenerating identical datasets across benchmarks.
var dataCache sync.Map

func benchData(dist dataset.Distribution, n, d int) point.Matrix {
	key := fmt.Sprintf("%s/%d/%d", dist, n, d)
	if v, ok := dataCache.Load(key); ok {
		return v.(point.Matrix)
	}
	m := dataset.Generate(dist, n, d, 42)
	dataCache.Store(key, m)
	return m
}

func runAlg(b *testing.B, alg skybench.Algorithm, m point.Matrix, threads int, mut func(*skybench.Options)) {
	b.Helper()
	rows := m.Rows()
	opt := skybench.Options{Algorithm: alg, Threads: threads}
	if mut != nil {
		mut(&opt)
	}
	var last skybench.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := skybench.Compute(rows, opt)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(float64(last.Stats.DominanceTests), "DTs/op")
	b.ReportMetric(float64(last.Stats.SkylineSize), "skypoints")
}

// BenchmarkFig4SkylineSizes measures skyline extraction per distribution
// at the base scale; the skypoints metric is the figure's y-axis.
func BenchmarkFig4SkylineSizes(b *testing.B) {
	for _, dist := range dataset.AllDistributions {
		for _, d := range benchDims {
			b.Run(fmt.Sprintf("dist=%s/d=%d", dist, d), func(b *testing.B) {
				runAlg(b, skybench.Hybrid, benchData(dist, benchN, d), 4, nil)
			})
		}
	}
}

// fig56Algos mirrors the five algorithms of Figures 5 and 6.
var fig56Algos = []skybench.Algorithm{
	skybench.BSkyTree, skybench.Hybrid, skybench.PBSkyTree,
	skybench.QFlow, skybench.PSkyline,
}

// BenchmarkFig5VaryDimensionality is Figure 5: the five algorithms as d
// grows, per distribution.
func BenchmarkFig5VaryDimensionality(b *testing.B) {
	for _, dist := range dataset.AllDistributions {
		for _, d := range benchDims {
			for _, alg := range fig56Algos {
				threads := 4
				if alg == skybench.BSkyTree {
					threads = 1
				}
				b.Run(fmt.Sprintf("dist=%s/d=%d/alg=%s", dist, d, alg), func(b *testing.B) {
					runAlg(b, alg, benchData(dist, benchN, d), threads, nil)
				})
			}
		}
	}
}

// BenchmarkFig6VaryCardinality is Figure 6: the five algorithms as n
// grows, per distribution.
func BenchmarkFig6VaryCardinality(b *testing.B) {
	for _, dist := range dataset.AllDistributions {
		for _, n := range benchNs {
			for _, alg := range fig56Algos {
				threads := 4
				if alg == skybench.BSkyTree {
					threads = 1
				}
				b.Run(fmt.Sprintf("dist=%s/n=%d/alg=%s", dist, n, alg), func(b *testing.B) {
					runAlg(b, alg, benchData(dist, n, benchD), threads, nil)
				})
			}
		}
	}
}

// BenchmarkTable1RealDataSizes measures the real-data stand-ins
// themselves (Table I): the skypoints metric is |SKY|.
func BenchmarkTable1RealDataSizes(b *testing.B) {
	for _, r := range dataset.AllRealDatasets {
		b.Run(fmt.Sprintf("dataset=%s", r), func(b *testing.B) {
			runAlg(b, skybench.Hybrid, r.Load(0.05), 4, nil)
		})
	}
}

// BenchmarkTable2RealData is Table II: all five algorithms on the
// real-data stand-ins.
func BenchmarkTable2RealData(b *testing.B) {
	for _, r := range dataset.AllRealDatasets {
		m := r.Load(0.05)
		for _, alg := range fig56Algos {
			threads := 4
			if alg == skybench.BSkyTree {
				threads = 1
			}
			b.Run(fmt.Sprintf("dataset=%s/alg=%s", r, alg), func(b *testing.B) {
				runAlg(b, alg, m, threads, nil)
			})
		}
	}
}

// BenchmarkFig7AlphaQFlow is Figure 7: Q-Flow across the α sweep.
func BenchmarkFig7AlphaQFlow(b *testing.B) {
	for _, dist := range dataset.AllDistributions {
		m := benchData(dist, benchN, benchD)
		for _, alpha := range []int{1 << 7, 1 << 10, 1 << 13, 1 << 16} {
			b.Run(fmt.Sprintf("dist=%s/alpha=%d", dist, alpha), func(b *testing.B) {
				runAlg(b, skybench.QFlow, m, 4, func(o *skybench.Options) { o.Alpha = alpha })
			})
		}
	}
}

// BenchmarkFig8AlphaHybrid is Figure 8: Hybrid across the α sweep.
func BenchmarkFig8AlphaHybrid(b *testing.B) {
	for _, dist := range dataset.AllDistributions {
		m := benchData(dist, benchN, benchD)
		for _, alpha := range []int{1 << 7, 1 << 10, 1 << 13, 1 << 16} {
			b.Run(fmt.Sprintf("dist=%s/alpha=%d", dist, alpha), func(b *testing.B) {
				runAlg(b, skybench.Hybrid, m, 4, func(o *skybench.Options) { o.Alpha = alpha })
			})
		}
	}
}

// BenchmarkFig9PivotSelection is Figure 9: Hybrid's pivot strategies
// across α on the independent workload.
func BenchmarkFig9PivotSelection(b *testing.B) {
	m := benchData(dataset.Independent, benchN, benchD)
	pivots := []skybench.PivotStrategy{
		skybench.PivotBalanced, skybench.PivotVolume, skybench.PivotManhattan,
		skybench.PivotRandom, skybench.PivotMedian,
	}
	for _, alpha := range []int{16, 128, 1024, 8192} {
		for _, p := range pivots {
			p := p
			b.Run(fmt.Sprintf("alpha=%d/pivot=%s", alpha, p), func(b *testing.B) {
				runAlg(b, skybench.Hybrid, m, 4, func(o *skybench.Options) {
					o.Alpha = alpha
					o.Pivot = p
					o.Seed = 42
				})
			})
		}
	}
}

// threadScalingBench emits the thread-sweep cells of Figures 10–13.
func threadScalingBench(b *testing.B, a1, a2 skybench.Algorithm, overDims bool) {
	dist := dataset.Independent
	sweep := benchDims
	if !overDims {
		sweep = benchNs
	}
	for _, x := range sweep {
		var m point.Matrix
		var label string
		if overDims {
			m = benchData(dist, benchN, x)
			label = fmt.Sprintf("d=%d", x)
		} else {
			m = benchData(dist, x, benchD)
			label = fmt.Sprintf("n=%d", x)
		}
		for _, t := range benchThreads {
			for _, alg := range []skybench.Algorithm{a1, a2} {
				b.Run(fmt.Sprintf("%s/t=%d/alg=%s", label, t, alg), func(b *testing.B) {
					runAlg(b, alg, m, t, nil)
				})
			}
		}
	}
}

// BenchmarkFig10ThreadScalingD is Figure 10: Q-Flow vs PSkyline over d.
func BenchmarkFig10ThreadScalingD(b *testing.B) {
	threadScalingBench(b, skybench.QFlow, skybench.PSkyline, true)
}

// BenchmarkFig11ThreadScalingN is Figure 11: Q-Flow vs PSkyline over n.
func BenchmarkFig11ThreadScalingN(b *testing.B) {
	threadScalingBench(b, skybench.QFlow, skybench.PSkyline, false)
}

// BenchmarkFig12HybridScalingD is Figure 12: Hybrid vs PBSkyTree over d.
func BenchmarkFig12HybridScalingD(b *testing.B) {
	threadScalingBench(b, skybench.Hybrid, skybench.PBSkyTree, true)
}

// BenchmarkFig13HybridScalingN is Figure 13: Hybrid vs PBSkyTree over n.
func BenchmarkFig13HybridScalingN(b *testing.B) {
	threadScalingBench(b, skybench.Hybrid, skybench.PBSkyTree, false)
}

// BenchmarkTable3PBSkyTreeOverhead is Table III: single-threaded
// PBSkyTree against natively sequential BSkyTree.
func BenchmarkTable3PBSkyTreeOverhead(b *testing.B) {
	for _, dist := range dataset.AllDistributions {
		m := benchData(dist, benchN, benchD)
		for _, alg := range []skybench.Algorithm{skybench.BSkyTree, skybench.PBSkyTree} {
			b.Run(fmt.Sprintf("dist=%s/alg=%s", dist, alg), func(b *testing.B) {
				runAlg(b, alg, m, 1, nil)
			})
		}
	}
}

// Ablation benchmarks: the Hybrid design choices DESIGN.md calls out,
// measured on the hardest (anticorrelated) workload.
func BenchmarkAblationHybridComponents(b *testing.B) {
	m := benchData(dataset.Anticorrelated, benchN, benchD)
	variants := []struct {
		name string
		ab   skybench.Ablation
	}{
		{"full", skybench.Ablation{}},
		{"no-ms", skybench.Ablation{NoMS: true}},
		{"no-level2", skybench.Ablation{NoLevel2: true}},
		{"no-prefilter", skybench.Ablation{NoPrefilter: true}},
		{"no-p2split", skybench.Ablation{NoPhase2Split: true}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			runAlg(b, skybench.Hybrid, m, 4, func(o *skybench.Options) { o.Ablation = v.ab })
		})
	}
}

// BenchmarkExtensionMulticore compares all six multicore algorithms in
// the suite (the paper's four plus the related-work PSFS and
// APSkyline) on the independent workload.
func BenchmarkExtensionMulticore(b *testing.B) {
	m := benchData(dataset.Independent, benchN, benchD)
	for _, alg := range []skybench.Algorithm{
		skybench.Hybrid, skybench.QFlow, skybench.PBSkyTree,
		skybench.PSkyline, skybench.PSFS, skybench.APSkyline,
	} {
		alg := alg
		b.Run(fmt.Sprintf("alg=%s", alg), func(b *testing.B) {
			runAlg(b, alg, m, 4, nil)
		})
	}
}

// defaultWorkload is the issue's acceptance workload: the paper's default
// independent distribution at n=100k, d=8, 8 threads.
const (
	defaultN       = 100000
	defaultD       = 8
	defaultThreads = 8
)

// benchDefault times one hot-path algorithm on the acceptance workload
// through a reused Context (the serving configuration): steady-state
// zero-allocation runs on a persistent worker pool.
func benchDefault(b *testing.B, alg skybench.Algorithm) {
	m := benchData(dataset.Independent, defaultN, defaultD)
	ctx := skybench.NewContext()
	defer ctx.Close()
	opt := skybench.Options{Algorithm: alg, Threads: defaultThreads}
	var last skybench.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ctx.ComputeFlat(m.Flat(), m.N(), m.D(), opt)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(float64(last.Stats.DominanceTests), "DTs/op")
	b.ReportMetric(float64(last.Stats.SkylineSize), "skypoints")
}

// BenchmarkHybridDefault is the acceptance benchmark of the
// zero-allocation-hot-paths issue: Hybrid on independent n=100k, d=8,
// t=8. Compare against the pre-PR tree (see BENCH_*.json).
func BenchmarkHybridDefault(b *testing.B) { benchDefault(b, skybench.Hybrid) }

// BenchmarkQFlowDefault is BenchmarkHybridDefault for Q-Flow.
func BenchmarkQFlowDefault(b *testing.B) { benchDefault(b, skybench.QFlow) }

// BenchmarkEngineSkyband measures the steady-state k-skyband serving
// path (warm Engine, ReuseIndices) for the k values the golden suite
// pins, with the zero-allocation guarantee enforced before timing —
// the skyband counterpart of BenchmarkEngineRunReuse.
func BenchmarkEngineSkyband(b *testing.B) {
	m := benchData(dataset.Independent, defaultN, defaultD)
	ds, err := skybench.DatasetFromFlat(m.Flat(), m.N(), m.D())
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{2, 4, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			eng := skybench.NewEngine(defaultThreads)
			defer eng.Close()
			ctx := context.Background()
			q := skybench.Query{SkybandK: k, ReuseIndices: true}
			var last skybench.Result
			if last, err = eng.Run(ctx, ds, q); err != nil { // warm scratch
				b.Fatal(err)
			}
			if allocs := testing.AllocsPerRun(3, func() {
				if _, err := eng.Run(ctx, ds, q); err != nil {
					b.Fatal(err)
				}
			}); allocs != 0 {
				b.Fatalf("steady-state skyband Engine.Run allocates %.1f per call, want 0", allocs)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if last, err = eng.Run(ctx, ds, q); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(last.Stats.DominanceTests), "DTs/op")
			b.ReportMetric(float64(last.Stats.SkylineSize), "bandpoints")
		})
	}
}

// BenchmarkDominanceKernel measures the raw dominance-test kernels the
// whole suite is built on (the analogue of the paper's SIMD study).
func BenchmarkDominanceKernel(b *testing.B) {
	m := benchData(dataset.Independent, 2, 8)
	p, q := m.Row(0), m.Row(1)
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			point.Dominates(p, q)
		}
	})
	b.Run("unrolled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			point.DominatesD(p, q, 8)
		}
	})
}
