package skybench_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"skybench"
)

// TestEngineMatchesCompute cross-checks Engine.Run against the legacy
// one-shot path for the hot-path algorithms and a baseline, reusing one
// Engine across differently-shaped queries so the free-list sees
// shrinking and growing workloads.
func TestEngineMatchesCompute(t *testing.T) {
	eng := skybench.NewEngine(4)
	defer eng.Close()
	ctx := context.Background()
	for _, alg := range []skybench.Algorithm{skybench.Hybrid, skybench.QFlow, skybench.SFS} {
		for _, n := range []int{1, 100, 5000} {
			data := contextTestData(t, n, 6)
			want, err := skybench.Compute(data, skybench.Options{Algorithm: alg, Threads: 4})
			if err != nil {
				t.Fatal(err)
			}
			ds, err := skybench.NewDataset(data)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Run(ctx, ds, skybench.Query{Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			if !sameIndexSet(got.Indices, want.Indices) {
				t.Fatalf("alg=%s n=%d: engine selects %d points, one-shot selects %d",
					alg, n, len(got.Indices), len(want.Indices))
			}
		}
	}
}

// prefOracle computes the expected result of a preference query by doing
// what callers had to do before the v2 API: negate maximized columns,
// drop ignored ones, and run the legacy minimize-everything Compute.
func prefOracle(t *testing.T, data [][]float64, prefs []skybench.Pref, alg skybench.Algorithm) []int {
	t.Helper()
	var rows [][]float64
	for _, row := range data {
		var out []float64
		for j, p := range prefs {
			switch p {
			case skybench.Min:
				out = append(out, row[j])
			case skybench.Max:
				out = append(out, -row[j])
			}
		}
		rows = append(rows, out)
	}
	res, err := skybench.Compute(rows, skybench.Options{Algorithm: alg, Threads: 2})
	if err != nil {
		t.Fatalf("oracle %s: %v", alg, err)
	}
	return res.Indices
}

// TestEnginePrefsOracle is the subspace/maximize cross-check: for every
// algorithm and each of the paper's three distributions, Engine.Run with
// Max/Ignore preferences must select exactly the points an oracle finds
// by negating/projecting columns and running the legacy API.
func TestEnginePrefsOracle(t *testing.T) {
	prefs := []skybench.Pref{skybench.Min, skybench.Max, skybench.Ignore, skybench.Min, skybench.Max}
	eng := skybench.NewEngine(2)
	defer eng.Close()
	ctx := context.Background()
	for _, dist := range []string{"correlated", "independent", "anticorrelated"} {
		data, err := skybench.GenerateDataset(dist, 1200, len(prefs), 7)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := skybench.NewDataset(data)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range skybench.Algorithms {
			want := prefOracle(t, data, prefs, alg)
			got, err := eng.Run(ctx, ds, skybench.Query{Algorithm: alg, Prefs: prefs})
			if err != nil {
				t.Fatalf("%s/%s: %v", dist, alg, err)
			}
			if !sameIndexSet(got.Indices, want) {
				t.Errorf("%s/%s: engine selects %d points under prefs, oracle says %d",
					dist, alg, len(got.Indices), len(want))
			}
		}
	}
}

// TestEngineConcurrent hammers one Engine over one shared Dataset from
// many goroutines — the serving scenario the Engine exists for, and the
// CI race-detector target. Queries mix algorithms, thread counts, and
// preferences; each result is checked against a precomputed answer.
func TestEngineConcurrent(t *testing.T) {
	data := contextTestData(t, 12000, 5)
	ds, err := skybench.NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	prefs := []skybench.Pref{skybench.Min, skybench.Max, skybench.Min, skybench.Ignore, skybench.Min}
	wantPlain, err := skybench.Compute(data, skybench.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := skybench.NewEngine(4)
	defer eng.Close()
	wantPrefs, err := eng.Run(context.Background(), ds, skybench.Query{Prefs: prefs})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const queriesEach = 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < queriesEach; i++ {
				q := skybench.Query{Threads: 1 + (g+i)%4}
				want := wantPlain.Indices
				switch (g + i) % 3 {
				case 1:
					q.Algorithm = skybench.QFlow
				case 2:
					q.Prefs = prefs
					want = wantPrefs.Indices
				}
				res, err := eng.Run(ctx, ds, q)
				if err != nil {
					errs <- err
					return
				}
				if !sameIndexSet(res.Indices, want) {
					t.Errorf("goroutine %d query %d: got %d skyline points, want %d",
						g, i, len(res.Indices), len(want))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestEngineCanceledBeforeStart is the issue's acceptance bound: an
// already-dead context must come back with ctx.Err() in under 50ms on
// the n=100k d=8 workload, i.e. without touching the data at all.
func TestEngineCanceledBeforeStart(t *testing.T) {
	data := contextTestData(t, 100000, 8)
	ds, err := skybench.NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	eng := skybench.NewEngine(0)
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err = eng.Run(ctx, ds, skybench.Query{})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) || !errors.Is(err, skybench.ErrCanceled) {
		t.Fatalf("err = %v, want context.Canceled wrapped in skybench.ErrCanceled", err)
	}
	if elapsed > 50*time.Millisecond {
		t.Errorf("canceled Run took %v, want < 50ms", elapsed)
	}
}

// TestEngineCancelMidFlight cancels a query while its block loop is
// running and requires Run to return ctx.Err() well before the full
// computation would have finished. The bound is relative to a measured
// uncancelled run of the same query, so it holds under the race
// detector's uniform slowdown.
func TestEngineCancelMidFlight(t *testing.T) {
	data := contextTestData(t, 100000, 8)
	ds, err := skybench.NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	eng := skybench.NewEngine(2)
	defer eng.Close()
	q := skybench.Query{Algorithm: skybench.QFlow}

	full := time.Now()
	if _, err := eng.Run(context.Background(), ds, q); err != nil {
		t.Fatal(err)
	}
	fullDur := time.Since(full)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(fullDur / 20)
		cancel()
	}()
	start := time.Now()
	res, err := eng.Run(ctx, ds, q)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) || !errors.Is(err, skybench.ErrCanceled) {
		t.Fatalf("err = %v, want context.Canceled wrapped in skybench.ErrCanceled", err)
	}
	if len(res.Indices) != 0 {
		t.Errorf("canceled Run leaked %d indices", len(res.Indices))
	}
	if elapsed > fullDur/2+50*time.Millisecond {
		t.Errorf("canceled Run took %v; uncancelled takes %v — cancellation is not prompt", elapsed, fullDur)
	}
}

// TestEngineRunZeroAlloc guards the steady-state serving path: a warm
// Engine answering repeated queries with ReuseIndices set must not
// allocate, with and without a preference transform. Cost counters
// (dominance tests, prune/survivor counts, phase timers) accumulate on
// every run, so passing here proves tracing support is free when
// Query.Trace is off — a trace is materialized only on request.
func TestEngineRunZeroAlloc(t *testing.T) {
	data := contextTestData(t, 20000, 8)
	ds, err := skybench.NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	eng := skybench.NewEngine(4)
	defer eng.Close()
	ctx := context.Background()
	prefs := []skybench.Pref{
		skybench.Min, skybench.Max, skybench.Min, skybench.Ignore,
		skybench.Min, skybench.Min, skybench.Max, skybench.Min,
	}
	for _, tc := range []struct {
		name string
		q    skybench.Query
	}{
		{"hybrid", skybench.Query{ReuseIndices: true}},
		{"qflow", skybench.Query{Algorithm: skybench.QFlow, ReuseIndices: true}},
		{"hybrid-prefs", skybench.Query{Prefs: prefs, ReuseIndices: true}},
	} {
		if _, err := eng.Run(ctx, ds, tc.q); err != nil { // warm scratch
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := eng.Run(ctx, ds, tc.q); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: Engine.Run allocates %.1f per call, want 0", tc.name, allocs)
		}

		// The same query untraced carries no trace; traced it carries
		// one (that path may allocate — it is not under the guard).
		res, err := eng.Run(ctx, ds, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Trace != nil {
			t.Errorf("%s: untraced Run returned a trace", tc.name)
		}
		tq := tc.q
		tq.Trace = true
		res, err = eng.Run(ctx, ds, tq)
		if err != nil {
			t.Fatal(err)
		}
		if res.Trace == nil {
			t.Fatalf("%s: traced Run returned no trace", tc.name)
		}
		if res.Trace.DominanceTests != res.Stats.DominanceTests || res.Trace.Output != len(res.Indices) {
			t.Errorf("%s: trace disagrees with result: %+v vs %d tests, %d points",
				tc.name, res.Trace, res.Stats.DominanceTests, len(res.Indices))
		}
	}
}

// TestEngineErrors exercises the validation surface.
func TestEngineErrors(t *testing.T) {
	eng := skybench.NewEngine(2)
	ctx := context.Background()
	data := contextTestData(t, 50, 3)
	ds, err := skybench.NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(ctx, nil, skybench.Query{}); !errors.Is(err, skybench.ErrBadDataset) {
		t.Errorf("nil dataset: err = %v, want ErrBadDataset", err)
	}
	if _, err := eng.Run(ctx, ds, skybench.Query{Prefs: []skybench.Pref{skybench.Min}}); !errors.Is(err, skybench.ErrBadQuery) {
		t.Errorf("mismatched preference length: err = %v, want ErrBadQuery", err)
	}
	allIgnore := []skybench.Pref{skybench.Ignore, skybench.Ignore, skybench.Ignore}
	if _, err := eng.Run(ctx, ds, skybench.Query{Prefs: allIgnore}); !errors.Is(err, skybench.ErrBadQuery) {
		t.Errorf("all-Ignore query: err = %v, want ErrBadQuery", err)
	}
	bad := []skybench.Pref{skybench.Min, skybench.Pref(42), skybench.Min}
	if _, err := eng.Run(ctx, ds, skybench.Query{Prefs: bad}); !errors.Is(err, skybench.ErrBadQuery) {
		t.Errorf("invalid preference value: err = %v, want ErrBadQuery", err)
	}
	empty, err := skybench.NewDataset(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := eng.Run(ctx, empty, skybench.Query{}); err != nil || len(res.Indices) != 0 {
		t.Errorf("empty dataset: res=%v err=%v, want empty success", res.Indices, err)
	}
	// A serving loop that always passes its schema's Prefs must not
	// break on an empty input: the empty dataset wins over validation.
	withPrefs := skybench.Query{Prefs: []skybench.Pref{skybench.Min, skybench.Max}}
	if res, err := eng.Run(ctx, empty, withPrefs); err != nil || len(res.Indices) != 0 {
		t.Errorf("empty dataset with prefs: res=%v err=%v, want empty success", res.Indices, err)
	}
	if _, err := eng.Run(ctx, ds, skybench.Query{Algorithm: skybench.Algorithm(99)}); !errors.Is(err, skybench.ErrUnknownAlgorithm) {
		t.Errorf("unknown algorithm: err = %v, want ErrUnknownAlgorithm", err)
	}
	eng.Close()
	if _, err := eng.Run(ctx, ds, skybench.Query{}); !errors.Is(err, skybench.ErrClosed) {
		t.Errorf("Run after Close: err = %v, want ErrClosed", err)
	}
}

// TestEnginePrewarm checks that pre-leased contexts serve queries (the
// sharded-attach path pre-warms one per shard) and that Prewarm after
// Close is a harmless no-op.
func TestEnginePrewarm(t *testing.T) {
	data := contextTestData(t, 2000, 4)
	ds, err := skybench.NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	eng := skybench.NewEngine(2)
	eng.Prewarm(3)
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Run(ctx, ds, skybench.Query{}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	eng.Close()
	eng.Prewarm(2) // must not panic or resurrect the pool
	if _, err := eng.Run(ctx, ds, skybench.Query{}); !errors.Is(err, skybench.ErrClosed) {
		t.Errorf("Run after Close+Prewarm: err = %v, want ErrClosed", err)
	}
}

// TestEngineExplicitMinPrefs checks that an all-Min preference vector is
// recognized as the identity transform (same result, no projection).
func TestEngineExplicitMinPrefs(t *testing.T) {
	data := contextTestData(t, 3000, 4)
	ds, err := skybench.NewDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	eng := skybench.NewEngine(2)
	defer eng.Close()
	ctx := context.Background()
	want, err := eng.Run(ctx, ds, skybench.Query{})
	if err != nil {
		t.Fatal(err)
	}
	allMin := []skybench.Pref{skybench.Min, skybench.Min, skybench.Min, skybench.Min}
	got, err := eng.Run(ctx, ds, skybench.Query{Prefs: allMin})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIndexSet(got.Indices, want.Indices) {
		t.Error("explicit all-Min prefs disagree with default query")
	}
}

// BenchmarkEngineRunReuse measures the steady-state serving path
// (ReuseIndices, warm Engine) and enforces its zero-allocation guarantee
// with an AllocsPerRun guard before timing.
func BenchmarkEngineRunReuse(b *testing.B) {
	data := contextTestData(b, 100000, 8)
	ds, err := skybench.NewDataset(data)
	if err != nil {
		b.Fatal(err)
	}
	eng := skybench.NewEngine(0)
	defer eng.Close()
	ctx := context.Background()
	q := skybench.Query{ReuseIndices: true}
	if _, err := eng.Run(ctx, ds, q); err != nil { // warm scratch
		b.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(3, func() {
		if _, err := eng.Run(ctx, ds, q); err != nil {
			b.Fatal(err)
		}
	}); allocs != 0 {
		b.Fatalf("steady-state Engine.Run allocates %.1f per call, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(ctx, ds, q); err != nil {
			b.Fatal(err)
		}
	}
}
